"""Loop-nest IR: a *tiny*-style mini language with parser and interpreter."""

from .affine import AffineExpr, UTerm, affine, uterm_ref, var
from .ast import Access, ArrayRef, IRError, Loop, Program, Statement
from .builder import ProgramBuilder
from .interp import (
    AccessEvent,
    FlowInstance,
    Interpreter,
    Trace,
    anti_dependence_instances,
    memory_based_flows,
    memory_based_pairs,
    output_dependence_instances,
    run_program,
    value_based_flows,
)
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse
from .printer import to_text

__all__ = [
    "AffineExpr",
    "UTerm",
    "affine",
    "var",
    "uterm_ref",
    "ArrayRef",
    "Statement",
    "Loop",
    "Program",
    "Access",
    "IRError",
    "ProgramBuilder",
    "parse",
    "ParseError",
    "tokenize",
    "Token",
    "LexError",
    "to_text",
    "Interpreter",
    "run_program",
    "Trace",
    "AccessEvent",
    "FlowInstance",
    "value_based_flows",
    "memory_based_flows",
    "memory_based_pairs",
    "anti_dependence_instances",
    "output_dependence_instances",
]
