"""IR-level expressions: affine forms over names, plus uninterpreted terms.

The analysis front end works with *names* (loop variables and symbolic
constants), not solver variables; the dependence-problem builder later maps
names onto :class:`repro.omega.Variable` instances per statement instance.

An :class:`AffineExpr` is::

    sum(coeff * name)  +  constant  +  sum(coeff * uterm)

where each :class:`UTerm` is an uninterpreted term — an index-array read
like ``Q[L1+1]``, a non-linear product like ``i*j``, or a mutated scalar —
exactly the constructs Section 5 of the paper handles by introducing "a
different symbolic variable for each appearance of the expression".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = ["UTerm", "AffineExpr", "affine", "var", "uterm_ref"]


@dataclass(frozen=True)
class UTerm:
    """An uninterpreted term embedded in an otherwise-affine expression.

    ``kind`` is one of:

    ``"array"``
        An array read used as a value, e.g. ``Q[L1]`` in a subscript or
        ``a(L2-1)`` on a right-hand side.  ``args`` are the subscripts.
    ``"product"``
        A non-linear product such as ``i*j``; the paper treats it "as an
        array indexed by all the non-constant variables", i.e. ``Q[i,j]``.
    ``"scalar"``
        A scalar that is written somewhere in the program (so it is *not* a
        symbolic constant); ``args`` are the enclosing loop variables — its
        value is an unknown function of the iteration vector.
    """

    name: str
    args: tuple["AffineExpr", ...]
    kind: str = "array"

    def __post_init__(self) -> None:
        if self.kind not in ("array", "product", "scalar"):
            raise ValueError(f"unknown UTerm kind {self.kind!r}")

    def __str__(self) -> str:
        if self.kind == "product":
            return "*".join(str(a) for a in self.args)
        if not self.args:
            return self.name
        return f"{self.name}[{','.join(str(a) for a in self.args)}]"

    def referenced_arrays(self) -> frozenset[str]:
        found = set()
        if self.kind == "array":
            found.add(self.name)
        for arg in self.args:
            found.update(arg.referenced_arrays())
        return frozenset(found)


class AffineExpr:
    """An immutable linear combination of names, uterms and a constant."""

    __slots__ = ("_coeffs", "_const", "_uterms")

    def __init__(
        self,
        coeffs: Mapping[str, int] | None = None,
        constant: int = 0,
        uterms: Iterable[tuple[int, UTerm]] = (),
    ):
        clean: dict[str, int] = {}
        if coeffs:
            for name, coeff in coeffs.items():
                if coeff:
                    clean[name] = int(coeff)
        merged: dict[UTerm, int] = {}
        for coeff, term in uterms:
            if coeff:
                merged[term] = merged.get(term, 0) + coeff
        self._coeffs = clean
        self._const = int(constant)
        self._uterms = tuple(
            (coeff, term)
            for term, coeff in sorted(merged.items(), key=lambda kv: str(kv[0]))
            if coeff
        )

    # ------------------------------------------------------------------
    @property
    def coeffs(self) -> Mapping[str, int]:
        return self._coeffs

    @property
    def constant(self) -> int:
        return self._const

    @property
    def uterms(self) -> tuple[tuple[int, UTerm], ...]:
        return self._uterms

    @property
    def is_affine(self) -> bool:
        """True when the expression contains no uninterpreted terms."""

        return not self._uterms

    @property
    def is_constant(self) -> bool:
        return not self._coeffs and not self._uterms

    def names(self) -> frozenset[str]:
        """Names appearing linearly (not inside uterm arguments)."""

        return frozenset(self._coeffs)

    def all_names(self) -> frozenset[str]:
        """Names appearing anywhere, including inside uterm arguments."""

        found = set(self._coeffs)
        for _c, term in self._uterms:
            for arg in term.args:
                found.update(arg.all_names())
        return frozenset(found)

    def referenced_arrays(self) -> frozenset[str]:
        found: set[str] = set()
        for _c, term in self._uterms:
            found.update(term.referenced_arrays())
        return frozenset(found)

    def coeff(self, name: str) -> int:
        return self._coeffs.get(name, 0)

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value) -> "AffineExpr":
        if isinstance(value, AffineExpr):
            return value
        if isinstance(value, str):
            return AffineExpr({value: 1})
        if isinstance(value, int):
            return AffineExpr({}, value)
        if isinstance(value, UTerm):
            return AffineExpr({}, 0, [(1, value)])
        raise TypeError(f"cannot interpret {value!r} as an affine expression")

    def __add__(self, other) -> "AffineExpr":
        rhs = self._coerce(other)
        coeffs = dict(self._coeffs)
        for name, coeff in rhs._coeffs.items():
            coeffs[name] = coeffs.get(name, 0) + coeff
        return AffineExpr(
            coeffs,
            self._const + rhs._const,
            list(self._uterms) + list(rhs._uterms),
        )

    __radd__ = __add__

    def __sub__(self, other) -> "AffineExpr":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "AffineExpr":
        return self._coerce(other) + (-self)

    def __neg__(self) -> "AffineExpr":
        return AffineExpr(
            {k: -v for k, v in self._coeffs.items()},
            -self._const,
            [(-c, t) for c, t in self._uterms],
        )

    def __mul__(self, other) -> "AffineExpr":
        rhs = self._coerce(other)
        if rhs.is_constant:
            k = rhs._const
            return AffineExpr(
                {name: c * k for name, c in self._coeffs.items()},
                self._const * k,
                [(c * k, t) for c, t in self._uterms],
            )
        if self.is_constant:
            return rhs * self
        # Non-linear: both sides mention variables.  Represent as a product
        # uterm, "an array indexed by all the non-constant variables".
        return AffineExpr({}, 0, [(1, UTerm("*", (self, rhs), "product"))])

    __rmul__ = __mul__

    def __eq__(self, other) -> bool:
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return (
            self._coeffs == other._coeffs
            and self._const == other._const
            and self._uterms == other._uterms
        )

    def __hash__(self) -> int:
        return hash(
            (tuple(sorted(self._coeffs.items())), self._const, self._uterms)
        )

    def substitute_name(self, name: str, replacement: "AffineExpr") -> "AffineExpr":
        """Replace every linear and nested occurrence of ``name``."""

        coeff = self._coeffs.get(name, 0)
        coeffs = {k: v for k, v in self._coeffs.items() if k != name}
        base = AffineExpr(coeffs, self._const)
        result = base + replacement * coeff
        for c, term in self._uterms:
            new_args = tuple(
                arg.substitute_name(name, replacement) for arg in term.args
            )
            result = result + AffineExpr(
                {}, 0, [(c, UTerm(term.name, new_args, term.kind))]
            )
        return result

    def __str__(self) -> str:
        parts: list[str] = []

        def push(text: str) -> None:
            if parts and not text.startswith("-"):
                parts.append(f"+{text}")
            else:
                parts.append(text)

        for name, coeff in sorted(self._coeffs.items()):
            if coeff == 1:
                push(name)
            elif coeff == -1:
                push(f"-{name}")
            else:
                push(f"{coeff}*{name}")
        for coeff, term in self._uterms:
            if coeff == 1:
                push(str(term))
            elif coeff == -1:
                push(f"-{term}")
            else:
                push(f"{coeff}*{term}")
        if self._const or not parts:
            if parts and self._const >= 0:
                parts.append(f"+{self._const}")
            else:
                parts.append(str(self._const))
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover
        return f"AffineExpr({self})"


def affine(value) -> AffineExpr:
    """Coerce ints, names and uterms to :class:`AffineExpr`."""

    return AffineExpr._coerce(value)


def var(name: str) -> AffineExpr:
    """A single name (loop variable or symbolic constant) as an expression."""

    return AffineExpr({name: 1})


def uterm_ref(name: str, *args, kind: str = "array") -> AffineExpr:
    """An expression that is a single uninterpreted term reference."""

    return AffineExpr(
        {}, 0, [(1, UTerm(name, tuple(affine(a) for a in args), kind))]
    )
