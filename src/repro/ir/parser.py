"""Recursive-descent parser for the mini loop language.

Grammar (statements are newline-insensitive; ``;`` is optional)::

    program  :=  stmt*
    stmt     :=  loop | assign
    loop     :=  'for' IDENT ':=' bound 'to' bound ('step' INT)? 'do' body
    body     :=  '{' stmt* '}'  |  stmt
    bound    :=  'max' '(' expr (',' expr)* ')'     (lower bounds)
              |  'min' '(' expr (',' expr)* ')'     (upper bounds)
              |  expr
    assign   :=  ref ':=' expr?  ';'?
              |  ':=' expr ';'?                     (pure read, as in the
                                                     paper's ":= a(L1)")
    ref      :=  IDENT ( '(' expr (',' expr)* ')'
                       | '[' expr (',' expr)* ']' )?
    expr     :=  term (('+'|'-') term)*
    term     :=  factor ('*' factor)*
    factor   :=  INT | ref | '(' expr ')' | '-' factor

    An array reference in an expression becomes an uninterpreted "array"
    term; products of two non-constant factors become "product" terms
    (Section 5's i*j-as-Q[i,j] treatment).

Example::

    for L1 := 1 to n do
      for L2 := 2 to m do
        a(L2) := a(L2-1)
"""

from __future__ import annotations

from typing import Sequence

from .affine import AffineExpr, UTerm, affine, uterm_ref, var
from .ast import ArrayRef, Declaration, IRError, Loop, Node, Program, Statement
from .lexer import Token, tokenize

__all__ = ["ParseError", "parse", "parse_statement_list"]


class ParseError(Exception):
    """Raised on syntax errors, with line/column context."""


class _Parser:
    def __init__(self, tokens: Sequence[Token]):
        self.tokens = tokens
        self.index = 0

    # Token plumbing ----------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def accept(self, kind: str) -> Token | None:
        if self.peek().kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.kind} {token.text!r} "
                f"at line {token.line}, column {token.column}"
            )
        return self.advance()

    # Grammar -----------------------------------------------------------
    def parse_program(self, name: str) -> Program:
        body = self.parse_statements(stop={"EOF"})
        self.expect("EOF")
        return Program(body, name)

    def parse_statements(self, stop: set[str]) -> list[Node]:
        nodes: list[Node] = []
        while self.peek().kind not in stop:
            nodes.append(self.parse_statement())
        return nodes

    def parse_statement(self) -> Node:
        kind = self.peek().kind
        if kind == "FOR":
            return self.parse_loop()
        if kind in ("ARRAY", "REAL", "INT", "INTEGER"):
            return self.parse_declaration()
        return self.parse_assign()

    def parse_declaration(self) -> Declaration:
        self.advance()  # array / real / int / integer
        name = self.expect("IDENT").text
        opener = self.peek().kind
        if opener == "LBRACKET":
            self.advance()
            closer = "RBRACKET"
        else:
            self.expect("LPAREN")
            closer = "RPAREN"
        bounds: list[tuple[AffineExpr, AffineExpr]] = []
        while True:
            lo = self.parse_expr()
            self.expect("COLON")
            hi = self.parse_expr()
            bounds.append((lo, hi))
            if not self.accept("COMMA"):
                break
        self.expect(closer)
        self.accept("SEMI")
        return Declaration(name, tuple(bounds))

    def parse_loop(self) -> Loop:
        self.expect("FOR")
        var_token = self.expect("IDENT")
        self.expect("ASSIGN")
        lowers = self.parse_bound(lower=True)
        self.expect("TO")
        uppers = self.parse_bound(lower=False)
        step = 1
        if self.accept("STEP"):
            negative = bool(self.accept("MINUS"))
            step_token = self.expect("INT")
            step = int(step_token.text)
            if negative:
                raise ParseError(
                    f"negative step at line {step_token.line}: normalize "
                    "the loop first (the paper normalizes CHOLSKY's "
                    "negative-step loop the same way)"
                )
        self.expect("DO")
        if self.accept("LBRACE"):
            body = self.parse_statements(stop={"RBRACE"})
            self.expect("RBRACE")
        else:
            body = [self.parse_statement()]
        return Loop(var_token.text, tuple(lowers), tuple(uppers), body, step)

    def parse_bound(self, lower: bool) -> list[AffineExpr]:
        token = self.peek()
        if token.kind in ("MAX", "MIN"):
            self.advance()
            if (token.kind == "MAX") != lower:
                raise ParseError(
                    f"{token.text} at line {token.line}: max() is only "
                    "allowed in lower bounds and min() in upper bounds "
                    "(anything else is not expressible as a conjunction)"
                )
            self.expect("LPAREN")
            exprs = [self.parse_expr()]
            while self.accept("COMMA"):
                exprs.append(self.parse_expr())
            self.expect("RPAREN")
            return exprs
        return [self.parse_expr()]

    def parse_assign(self) -> Statement:
        if self.accept("ASSIGN"):  # pure read:  := expr
            rhs = self.parse_expr() if self._expr_ahead() else affine(0)
            self.accept("SEMI")
            return Statement(None, rhs)
        target = self.parse_ref()
        self.expect("ASSIGN")
        rhs = self.parse_expr() if self._expr_ahead() else affine(0)
        self.accept("SEMI")
        return Statement(target, rhs)

    def _expr_ahead(self) -> bool:
        return self.peek().kind in {
            "INT",
            "IDENT",
            "LPAREN",
            "MINUS",
            "PLUS",
        }

    def parse_ref(self) -> ArrayRef:
        name = self.expect("IDENT").text
        subscripts: list[AffineExpr] = []
        if self.accept("LPAREN"):
            subscripts.append(self.parse_expr())
            while self.accept("COMMA"):
                subscripts.append(self.parse_expr())
            self.expect("RPAREN")
        elif self.accept("LBRACKET"):
            subscripts.append(self.parse_expr())
            while self.accept("COMMA"):
                subscripts.append(self.parse_expr())
            self.expect("RBRACKET")
        return ArrayRef(name, tuple(subscripts))

    def parse_expr(self) -> AffineExpr:
        expr = self.parse_term()
        while True:
            if self.accept("PLUS"):
                expr = expr + self.parse_term()
            elif self.accept("MINUS"):
                expr = expr - self.parse_term()
            else:
                return expr

    def parse_term(self) -> AffineExpr:
        expr = self.parse_factor()
        while self.accept("STAR"):
            expr = expr * self.parse_factor()
        return expr

    def parse_factor(self) -> AffineExpr:
        token = self.peek()
        if token.kind == "INT":
            self.advance()
            return affine(int(token.text))
        if token.kind == "MINUS":
            self.advance()
            return -self.parse_factor()
        if token.kind == "PLUS":
            self.advance()
            return self.parse_factor()
        if token.kind == "LPAREN":
            self.advance()
            expr = self.parse_expr()
            self.expect("RPAREN")
            return expr
        if token.kind == "IDENT":
            # Lookahead: array reference or plain name.
            if self.peek(1).kind in ("LPAREN", "LBRACKET"):
                ref = self.parse_ref()
                return uterm_ref(ref.array, *ref.subscripts)
            self.advance()
            return var(token.text)
        raise ParseError(
            f"unexpected {token.kind} {token.text!r} at line {token.line}, "
            f"column {token.column}"
        )


def parse(source: str, name: str = "program") -> Program:
    """Parse program text into a finalized :class:`Program`.

    Plain names on right-hand sides that are written nowhere in the program
    are treated as symbolic constants (loop-invariant scalars); names that
    are written become scalar variables and participate in dependence
    analysis.
    """

    parser = _Parser(tokenize(source))
    program = parser.parse_program(name)
    return _reclassify_names(program, name)


def parse_statement_list(source: str) -> list[Node]:
    """Parse a statement list without finalizing into a Program."""

    parser = _Parser(tokenize(source))
    nodes = parser.parse_statements(stop={"EOF"})
    parser.expect("EOF")
    return nodes


def _reclassify_names(program: Program, name: str) -> Program:
    """Turn references to never-written, subscript-free names into plain
    symbolic uses.

    At parse time ``x`` inside an expression becomes a linear name; that is
    already correct.  However ``k`` for a *written* scalar parsed as a
    linear name must become a "scalar" uterm (its value varies).  We rebuild
    statements accordingly.
    """

    written = {
        stmt.target.array for stmt in program.statements if stmt.target is not None
    }
    if not written:
        return program

    loop_var_names = {
        loop.var for stmt in program.statements for loop in stmt.loops
    }

    def fix_expr(expr: AffineExpr, loops: tuple[str, ...]) -> AffineExpr:
        result = AffineExpr({}, expr.constant)
        for nm, coeff in expr.coeffs.items():
            if nm in written and nm not in loop_var_names:
                # A mutated scalar read: value is an unknown function of
                # the enclosing iteration vector.
                term = UTerm(nm, tuple(var(lv) for lv in loops), "scalar")
                result = result + AffineExpr({}, 0, [(coeff, term)])
            else:
                result = result + AffineExpr({nm: coeff})
        for coeff, term in expr.uterms:
            new_args = tuple(fix_expr(arg, loops) for arg in term.args)
            result = result + AffineExpr(
                {}, 0, [(coeff, UTerm(term.name, new_args, term.kind))]
            )
        return result

    def rebuild(nodes: list[Node], loops: tuple[str, ...]) -> list[Node]:
        out: list[Node] = []
        for node in nodes:
            if isinstance(node, Declaration):
                out.append(node)
            elif isinstance(node, Loop):
                new_loops = loops + (node.var,)
                out.append(
                    Loop(
                        node.var,
                        tuple(fix_expr(b, loops) for b in node.lowers),
                        tuple(fix_expr(b, loops) for b in node.uppers),
                        rebuild(node.body, new_loops),
                        node.step,
                    )
                )
            else:
                target = node.target
                if target is not None:
                    target = ArrayRef(
                        target.array,
                        tuple(fix_expr(s, loops) for s in target.subscripts),
                    )
                out.append(Statement(target, fix_expr(node.rhs, loops)))
        return out

    # Detect whether any fixing is needed at all (cheap common case).
    needs_fix = False
    for stmt in program.statements:
        names = set(stmt.rhs.all_names())
        if stmt.target:
            for sub in stmt.target.subscripts:
                names.update(sub.all_names())
        for loop in stmt.loops:
            for bound in loop.lowers + loop.uppers:
                names.update(bound.all_names())
        if names & (written - loop_var_names):
            needs_fix = True
            break
    if not needs_fix:
        return program
    return Program(rebuild(program.body, ()), name)
