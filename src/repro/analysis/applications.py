"""Applications of accurate flow dependences: what the analysis buys.

The paper's introduction motivates kill analysis with program
transformations: storage-related dependences "can be eliminated by
techniques such as privatization, renaming, and array expansion.  However,
these methods cannot be applied if they appear to affect the flow
dependences of a program."  This module implements the two classic
clients:

* **Loop parallelization** — a loop can run its iterations in parallel
  when it carries no *live* dependence (storage dependences removed by
  privatizing the arrays they involve).
* **Array privatization** — an array is privatizable in a loop when every
  live flow dependence on it within the loop is loop-independent (each
  iteration reads only values it wrote itself), which is exactly what the
  kill analysis can prove and memory-based analysis cannot.

These are decision procedures over an :class:`AnalysisResult`; they do not
rewrite the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..ir.ast import Access, Loop, Program
from .dependences import Dependence, DependenceKind, DependenceStatus
from .results import AnalysisResult

__all__ = [
    "carried_dependences",
    "privatizable_arrays",
    "parallelizable_loops",
    "ParallelizationReport",
]


def _loop_level(statement_loops: tuple[Loop, ...], loop: Loop) -> int | None:
    """1-based nesting level of ``loop`` for a statement, None if absent."""

    for level, candidate in enumerate(statement_loops, start=1):
        if candidate is loop:
            return level
    return None


def _dependence_carried_by(dep: Dependence, loop: Loop) -> bool:
    """Could this dependence cross iterations of ``loop``?

    True when the loop encloses both endpoints at a common level and some
    direction vector admits a non-zero distance there, or when the loop
    encloses only one endpoint (the dependence necessarily crosses it).
    """

    src_level = _loop_level(dep.src.statement.loops, loop)
    dst_level = _loop_level(dep.dst.statement.loops, loop)
    if src_level is None or dst_level is None:
        return False
    if src_level != dst_level or src_level > len(dep.deltas):
        # The loop is not common to the pair: any dependence between the
        # two statements crosses its iterations.
        return True
    index = src_level - 1
    if not dep.directions:
        return True
    return any(
        component.lo is None or component.hi is None or component.lo != 0 or component.hi != 0
        for component in (vector[index] for vector in dep.directions)
    )


def carried_dependences(
    result: AnalysisResult, loop: Loop, *, live_only: bool = True
) -> list[Dependence]:
    """All dependences carried by (crossing iterations of) ``loop``."""

    found = []
    for dep in result.all_dependences():
        if live_only and dep.status is not DependenceStatus.LIVE:
            continue
        if _dependence_carried_by(dep, loop):
            found.append(dep)
    return found


def privatizable_arrays(result: AnalysisResult, loop: Loop) -> set[str]:
    """Arrays safely privatizable per-iteration of ``loop``.

    An array qualifies when every *live* flow dependence between accesses
    inside the loop stays within one iteration (loop-independent at the
    loop's level), so giving each iteration a private copy preserves all
    value flow.  Arrays read inside the loop from values produced outside
    it (a live flow dependence entering the loop) do not qualify.
    """

    inside: set[str] = set()
    for dep_access in _accesses_in(result.program, loop):
        inside.add(dep_access.array)

    blocked: set[str] = set()
    for dep in result.flow:
        if dep.status is not DependenceStatus.LIVE:
            continue
        src_in = _loop_level(dep.src.statement.loops, loop) is not None
        dst_in = _loop_level(dep.dst.statement.loops, loop) is not None
        if not src_in and not dst_in:
            continue
        if src_in != dst_in:
            blocked.add(dep.dst.array if dst_in else dep.src.array)
            continue
        if _dependence_carried_by(dep, loop):
            blocked.add(dep.src.array)
    return inside - blocked


@dataclass
class ParallelizationReport:
    """Verdict for one loop."""

    loop: Loop
    parallelizable: bool
    #: Live dependences that prevent parallel execution outright.
    blocking: list[Dependence] = field(default_factory=list)
    #: Storage (anti/output) dependences removable by privatizing these
    #: arrays; empty when nothing needed privatization.
    privatized: set[str] = field(default_factory=set)

    def describe(self) -> str:
        verdict = "PARALLEL" if self.parallelizable else "serial"
        extra = ""
        if self.parallelizable and self.privatized:
            extra = f" (privatizing {', '.join(sorted(self.privatized))})"
        if not self.parallelizable:
            extra = f" ({len(self.blocking)} blocking dependences)"
        return f"for {self.loop.var}: {verdict}{extra}"


def _accesses_in(program: Program, loop: Loop) -> Iterable[Access]:
    for access in program.accesses():
        if loop in access.statement.loops:
            yield access


def parallelizable_loops(result: AnalysisResult) -> list[ParallelizationReport]:
    """Classify every loop of the analysed program.

    A loop parallelizes when each dependence it carries is either (a) not
    a live flow dependence and its array is privatizable, or (b) dead.
    Live flow dependences carried by the loop block parallelization.
    """

    reports: list[ParallelizationReport] = []
    for loop in result.program.loops():
        carried = carried_dependences(result, loop)
        privatizable = privatizable_arrays(result, loop)
        blocking: list[Dependence] = []
        privatized: set[str] = set()
        for dep in carried:
            if dep.kind is DependenceKind.FLOW:
                blocking.append(dep)
            elif dep.src.array in privatizable:
                privatized.add(dep.src.array)
            else:
                blocking.append(dep)
        reports.append(
            ParallelizationReport(loop, not blocking, blocking, privatized)
        )
    return reports
