"""Building integer programming problems from access pairs.

For an array access pair (``src``, ``dst``) we create one Omega variable per
enclosing loop of each statement instance (``i``-copies for the source,
``j``-copies for the destination), shared variables for symbolic constants,
and *dependence distance* variables ``d1, d2, ...`` for the loops common to
both statements, pinned by ``d_l = dst_l - src_l``.

The problem splits into two conjunctions, following Figure 5 of the paper:

``domain``
    Iteration-space constraints for both instances ("loop bounds"), stride
    constraints, and any uterm argument bindings.
``coupling``
    Subscript equality ("the dependence exists").

Uninterpreted terms (index arrays, products, mutated scalars) become fresh
symbolic variables per occurrence, recorded in :class:`UTermOccurrence` so
the symbolic-analysis layer can relate and query them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..ir.affine import AffineExpr, UTerm
from ..ir.ast import Access, ArrayRef, IRError, Loop, Program, Statement
from ..omega import LinearExpr, Problem, Variable, fresh_wildcard

__all__ = [
    "UTermOccurrence",
    "InstanceContext",
    "PairProblem",
    "build_pair_problem",
    "build_instance",
    "common_depth",
    "syntactically_forward",
    "SymbolTable",
]


def common_depth(a: Access, b: Access) -> int:
    """Number of loops shared by the two statements (same Loop objects)."""

    depth = 0
    for la, lb in zip(a.statement.loops, b.statement.loops):
        if la is lb:
            depth += 1
        else:
            break
    return depth


def syntactically_forward(src: Access, dst: Access) -> bool:
    """True when src executes before dst within a single iteration of all
    common loops (textual order; reads before writes within a statement)."""

    if src.statement is dst.statement:
        if src.is_write == dst.is_write:
            return False
        return (not src.is_write) and dst.is_write
    return src.statement.position < dst.statement.position


class SymbolTable:
    """Shared symbolic-constant variables for one analysis run."""

    def __init__(self) -> None:
        self._vars: dict[str, Variable] = {}

    def sym(self, name: str) -> Variable:
        if name not in self._vars:
            self._vars[name] = Variable(name, "sym")
        return self._vars[name]

    def all(self) -> list[Variable]:
        return list(self._vars.values())


@dataclass
class UTermOccurrence:
    """One occurrence of an uninterpreted term within an instance."""

    term: UTerm
    #: Variable standing for the term's value in this occurrence.
    value_var: Variable
    #: Variables standing for each argument (the paper's s-variables).
    arg_vars: tuple[Variable, ...]
    #: Which instance ("src" or "dst") the occurrence belongs to.
    side: str

    @property
    def key(self) -> tuple[str, str, int]:
        """Occurrences with the same key denote the same unknown function."""

        return (self.term.kind, self.term.name, len(self.term.args))


@dataclass
class InstanceContext:
    """One statement instance with its iteration-space variables."""

    access: Access
    prefix: str
    loop_vars: tuple[Variable, ...]
    domain: Problem
    occurrences: list[UTermOccurrence]
    _name_map: dict[str, Variable]
    #: Memoized occurrences: the same uninterpreted term expression within
    #: one instance denotes one unknown value (e.g. a subscript Q[L1]
    #: translated for subscript equality and again for an in-bounds
    #: assertion must share the value variable).
    _uterm_cache: dict[UTerm, UTermOccurrence] = field(default_factory=dict)

    def map_name(self, name: str) -> Variable:
        return self._name_map[name]


_occurrence_counter = itertools.count(1)


def _translate(
    expr: AffineExpr,
    ctx: InstanceContext,
    symbols: SymbolTable,
    domain: Problem | None = None,
) -> LinearExpr:
    """Map an IR expression into solver space for one instance.

    Affine parts map through the instance's loop variables or the symbol
    table (symbolic constants).  Each uninterpreted term becomes a
    "sym"-kind value variable plus argument variables bound by equalities in
    the instance domain — symbolic analysis later reasons about and queries
    them.  Identical terms within an instance share one occurrence.
    """

    name_map = ctx._name_map
    bind_domain = domain if domain is not None else ctx.domain
    result = LinearExpr({}, expr.constant)
    for name, coeff in expr.coeffs.items():
        if name in name_map:
            result = result + LinearExpr({name_map[name]: coeff})
        else:
            result = result + LinearExpr({symbols.sym(name): coeff})
    for coeff, term in expr.uterms:
        cached = ctx._uterm_cache.get(term)
        if cached is None:
            occ_id = next(_occurrence_counter)
            arg_vars: list[Variable] = []
            for index, arg in enumerate(term.args):
                arg_expr = _translate(arg, ctx, symbols, domain)
                arg_var = Variable(f"{ctx.prefix}_s{occ_id}_{index}", "sym")
                bind_domain.add_eq(LinearExpr({arg_var: 1}), arg_expr)
                arg_vars.append(arg_var)
            cached = UTermOccurrence(
                term,
                Variable(f"{ctx.prefix}_{term.name}_{occ_id}", "sym"),
                tuple(arg_vars),
                ctx.prefix,
            )
            ctx._uterm_cache[term] = cached
            ctx.occurrences.append(cached)
        result = result + LinearExpr({cached.value_var: coeff})
    return result


def build_instance(
    access: Access,
    prefix: str,
    symbols: SymbolTable,
    array_bounds: Mapping[str, tuple] | None = None,
) -> InstanceContext:
    """Create iteration-space variables and constraints for one instance.

    ``array_bounds`` (array name -> ((lo, hi), ...)) adds in-bounds
    constraints for the instance's own reference — the paper's "the user
    has asserted that all array references are in bounds".
    """

    name_map: dict[str, Variable] = {}
    loop_vars: list[Variable] = []
    domain = Problem(name=f"[{access.statement.label}]")
    occurrences: list[UTermOccurrence] = []
    ctx = InstanceContext(access, prefix, (), domain, occurrences, name_map)

    for depth, loop in enumerate(access.statement.loops, start=1):
        var = Variable(f"{prefix}{depth}", "var")
        name_map[loop.var] = var
        loop_vars.append(var)

    for depth, loop in enumerate(access.statement.loops, start=1):
        var = name_map[loop.var]
        lower_exprs = [_translate(b, ctx, symbols) for b in loop.lowers]
        upper_exprs = [_translate(b, ctx, symbols) for b in loop.uppers]
        for lo in lower_exprs:
            domain.add_le(lo, var)
        for hi in upper_exprs:
            domain.add_le(var, hi)
        if loop.step != 1:
            # var = lower + step*q for a nonnegative wildcard q.
            quotient = fresh_wildcard("stp")
            domain.add_ge(quotient)
            domain.add_eq(
                LinearExpr({var: 1}), lower_exprs[0] + LinearExpr({quotient: loop.step})
            )

    ctx.loop_vars = tuple(loop_vars)

    if array_bounds and access.ref.array in array_bounds:
        declared = array_bounds[access.ref.array]
        for sub, (lo, hi) in zip(access.ref.subscripts, declared):
            sub_expr = _translate(sub, ctx, symbols)
            lo_expr = _translate(lo, ctx, symbols)
            hi_expr = _translate(hi, ctx, symbols)
            domain.add_le(lo_expr, sub_expr)
            domain.add_le(sub_expr, hi_expr)

    return ctx


@dataclass
class PairProblem:
    """The dependence problem for one (src access, dst access) pair."""

    src: Access
    dst: Access
    src_ctx: InstanceContext
    dst_ctx: InstanceContext
    symbols: SymbolTable
    #: Iteration spaces + uterm bindings (+ caller-added assertions).
    domain: Problem
    #: Subscript equality: the accesses touch the same location.
    coupling: Problem
    #: d_l = dst_l - src_l for the common loops; constrained in ``domain``.
    delta_vars: tuple[Variable, ...]
    #: User assertions over symbolic variables (also conjoined into domain).
    assertions: tuple = ()

    @property
    def depth(self) -> int:
        return len(self.delta_vars)

    @property
    def forward(self) -> bool:
        return syntactically_forward(self.src, self.dst)

    def full(self) -> Problem:
        """domain AND coupling."""

        return self.domain.conjoin(self.coupling)

    def occurrences(self) -> list[UTermOccurrence]:
        return self.src_ctx.occurrences + self.dst_ctx.occurrences

    def instance_vars(self) -> list[Variable]:
        return list(self.src_ctx.loop_vars) + list(self.dst_ctx.loop_vars)

    def sym_vars(self) -> list[Variable]:
        """Every 'sym'-kind variable mentioned anywhere in the problem."""

        found: set[Variable] = set()
        for problem in (self.domain, self.coupling):
            for v in problem.variables():
                if v.is_symbolic:
                    found.add(v)
        return sorted(found)


def build_pair_problem(
    src: Access,
    dst: Access,
    symbols: SymbolTable | None = None,
    *,
    assertions: Iterable = (),
    array_bounds: Mapping[str, tuple] | None = None,
    src_ctx: InstanceContext | None = None,
    dst_ctx: InstanceContext | None = None,
) -> PairProblem:
    """Construct the dependence problem for a pair of same-array accesses.

    ``assertions`` are extra :class:`~repro.omega.Constraint` objects over
    symbolic variables (user knowledge such as ``50 <= n <= 100``); they are
    conjoined into the domain.  ``src_ctx`` / ``dst_ctx`` let the query
    planner (:mod:`repro.analysis.plan`) supply prebuilt instance contexts
    shared across the pairs of an iteration-space group; the instance
    domains are conjoined by copy, so a shared context is never mutated.
    """

    if src.array != dst.array:
        raise IRError(
            f"access pair on different arrays: {src.array} vs {dst.array}"
        )
    symbols = symbols or SymbolTable()
    if src_ctx is None:
        src_ctx = build_instance(src, "i", symbols, array_bounds)
    if dst_ctx is None:
        dst_ctx = build_instance(dst, "j", symbols, array_bounds)

    domain = src_ctx.domain.conjoin(dst_ctx.domain)
    domain.name = f"{src} -> {dst}"
    for constraint in assertions:
        domain.add(constraint)

    depth = common_depth(src, dst)
    deltas: list[Variable] = []
    for level in range(depth):
        d = Variable(f"d{level + 1}", "var")
        deltas.append(d)
        domain.add_eq(
            LinearExpr({d: 1}),
            LinearExpr({dst_ctx.loop_vars[level]: 1})
            - LinearExpr({src_ctx.loop_vars[level]: 1}),
        )

    coupling = Problem(name="subscripts")
    if len(src.ref.subscripts) != len(dst.ref.subscripts):
        raise IRError(
            f"rank mismatch for array {src.array}: "
            f"{len(src.ref.subscripts)} vs {len(dst.ref.subscripts)}"
        )
    for s_sub, d_sub in zip(src.ref.subscripts, dst.ref.subscripts):
        lhs = _translate(s_sub, src_ctx, symbols, domain)
        rhs = _translate(d_sub, dst_ctx, symbols, domain)
        coupling.add_eq(lhs, rhs)

    return PairProblem(
        src,
        dst,
        src_ctx,
        dst_ctx,
        symbols,
        domain,
        coupling,
        tuple(deltas),
        tuple(assertions),
    )
