"""The single-pass query planner: group pairs, share base systems.

``QueryPlan`` is built once per analysis run (when
``AnalysisOptions.planner`` is on and the run is ungoverned) and threads
through :func:`repro.analysis.dependences.compute_dependences` into the
direction-vector search.  It contributes two kinds of sharing:

*Base systems.*  Every candidate pair re-derives the same iteration-space
constraints for its two statement instances.  The plan groups candidate
pairs (flow/anti/output/input) by shared iteration space and builds each
statement instance's constraint system once per role prefix, reusing it
across all pairs of the group.  Sharing is restricted to *pure* instances
— affine subscripts and bounds, unit steps — whose construction mints no
fresh occurrence or wildcard variables, so a shared instance is
constraint-for-constraint identical to the one the legacy path would
build and results stay bit-identical.

*FM prefixes.*  Each pair's full problem is exactly reduced onto its
distance variables (:mod:`repro.omega.partial`) through the
:class:`repro.solver.plan.PlanSpace` memo, so the expensive elimination
prefix is computed once per group and reused by every sibling branch of
the direction-vector tree and by every other pair with the same
iteration space.

The planner changes *which problems* are submitted for the sign probes,
never the question order or the answers: probes remain one service query
per legacy query, with identical per-subject audit footprints.
"""

from __future__ import annotations

import os
import threading
from typing import Iterable, Mapping

from ..ir.ast import Access, Program
from ..obs import metrics as _metrics
from ..solver.plan import PlanSpace, PlanState
from .problem import (
    InstanceContext,
    PairProblem,
    SymbolTable,
    build_instance,
    build_pair_problem,
)

__all__ = ["QueryPlan", "default_planner_enabled"]

_DISABLED = {"0", "false", "no", "off"}


def default_planner_enabled() -> bool:
    """Planner default: on, unless ``REPRO_PLANNER`` disables it."""

    return os.environ.get("REPRO_PLANNER", "").strip().lower() not in _DISABLED


def _affine(expr) -> bool:
    return not getattr(expr, "uterms", ())


class QueryPlan:
    """Grouped candidate pairs plus the shared solver-side plan state."""

    def __init__(
        self,
        program: Program,
        symbols: SymbolTable,
        *,
        assertions: Iterable = (),
        array_bounds: Mapping[str, tuple] | None = None,
    ):
        self.program = program
        self.symbols = symbols
        self.assertions = tuple(assertions)
        self.array_bounds = array_bounds
        self.space = PlanSpace()
        self._instances: dict[tuple[int, str], InstanceContext] = {}
        self._pure: dict[int, bool] = {}
        self._lock = threading.Lock()
        self.groups = self._form_groups()

    # -- grouping -------------------------------------------------------
    def _signature(self, src: Access, dst: Access) -> tuple:
        """Pairs with the same signature share iteration-space systems."""

        return (
            tuple(id(loop) for loop in src.statement.loops),
            tuple(id(loop) for loop in dst.statement.loops),
            src.array,
        )

    def _form_groups(self) -> dict[tuple, list[tuple[Access, Access]]]:
        writes = self.program.writes()
        reads = self.program.reads()
        groups: dict[tuple, list[tuple[Access, Access]]] = {}
        candidates = [
            (src, dst)
            for sources, targets in (
                (writes, writes),  # output
                (reads, writes),   # anti
                (writes, reads),   # flow
                (reads, reads),    # input
            )
            for src in sources
            for dst in targets
            if src.array == dst.array
        ]
        for src, dst in candidates:
            groups.setdefault(self._signature(src, dst), []).append((src, dst))
        _metrics.inc("solver.plan.groups", len(groups))
        _metrics.inc("solver.plan.pairs_planned", len(candidates))
        return groups

    # -- shared base systems --------------------------------------------
    def _is_pure(self, access: Access) -> bool:
        """Does building this instance mint no fresh global variables?

        Impure instances (uninterpreted terms in bounds or subscripts,
        non-unit steps) draw from global occurrence/wildcard counters, so
        sharing one would shift the numbering the legacy path produces;
        they are rebuilt per pair exactly as before.
        """

        cached = self._pure.get(id(access))
        if cached is not None:
            return cached
        pure = all(_affine(sub) for sub in access.ref.subscripts)
        if pure:
            for loop in access.statement.loops:
                if loop.step != 1:
                    pure = False
                    break
                if not all(
                    _affine(bound)
                    for bound in tuple(loop.lowers) + tuple(loop.uppers)
                ):
                    pure = False
                    break
        if pure and self.array_bounds and access.ref.array in self.array_bounds:
            for lo, hi in self.array_bounds[access.ref.array]:
                if not (_affine(lo) and _affine(hi)):
                    pure = False
                    break
        self._pure[id(access)] = pure
        return pure

    def instance(self, access: Access, prefix: str) -> InstanceContext:
        """The (possibly shared) instance context for one access role."""

        if not self._is_pure(access):
            return build_instance(
                access, prefix, self.symbols, self.array_bounds
            )
        key = (id(access), prefix)
        with self._lock:
            ctx = self._instances.get(key)
            if ctx is None:
                ctx = build_instance(
                    access, prefix, self.symbols, self.array_bounds
                )
                self._instances[key] = ctx
                _metrics.inc("solver.plan.base_systems")
            else:
                _metrics.inc("solver.plan.base_reused")
        return ctx

    def pair_problem(self, src: Access, dst: Access) -> PairProblem:
        """The pair problem, derived from the group's shared instances."""

        return build_pair_problem(
            src,
            dst,
            self.symbols,
            assertions=self.assertions,
            array_bounds=self.array_bounds,
            src_ctx=self.instance(src, "i"),
            dst_ctx=self.instance(dst, "j"),
        )

    # -- shared elimination prefixes ------------------------------------
    def prepare(self, base, delta_vars) -> PlanState:
        """The root plan state for one pair's full problem."""

        return self.space.base_state(base, delta_vars)
