"""Kill analysis (Section 4.1) and the quick tests of Section 4.5.

A dependence from A to C is killed by the dependence from a write B to C
iff every element A passes to C is overwritten by B in between::

    forall i, k, Sym:
      i in [A] and k in [C] and A(i) << C(k) and A(i) sub= C(k)
        =>  exists j . j in [B] and A(i) << B(j) << C(k)
                       and B(j) sub= C(k)

The left side is the victim dependence's own problem (already a
conjunction, thanks to restraint vectors).  The right side needs a fresh
instance of B; the two execution orders are disjunctions over carrier
levels, so we enumerate case pairs, project each onto (i, k, Sym), and test
the implication against the union of all resulting pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..guard import budget as _guard
from ..ir.ast import Access
from ..obs.audit import note_conservative as _note_conservative
from ..obs.instrument import metrics as _metrics
from ..obs.instrument import span as _span
from ..omega import Problem, Variable
from ..omega.errors import BudgetExhausted, OmegaComplexityError
from ..solver import SolverQuery, implies_union, submit_batch
from .dependences import Dependence
from .ordering import execution_order_cases
from .problem import SymbolTable, build_instance, common_depth
from .vectors import DirComponent

__all__ = ["KillTester", "kill_quick_reject", "closer_cover_quick_kill", "distance_ranges"]


def distance_ranges(dep: Dependence) -> list[DirComponent]:
    """Per-level distance intervals, unioned over direction vectors."""

    if not dep.directions:
        return [DirComponent(None, None) for _ in dep.deltas]
    merged = list(dep.directions[0])
    for vector in dep.directions[1:]:
        merged = [m.merge(c) for m, c in zip(merged, vector)]
    return merged


def kill_quick_reject(
    victim: Dependence,
    killer: Dependence,
    output_pairs: set[tuple[Access, Access]],
) -> bool:
    """True when the quick tests show the kill cannot happen.

    1.  "there must be an output dependence between A and B" — no output
        dependence from the victim's source to the killer's source means
        the killer writes different elements.
    2.  "it must be possible for the dependence distance from A to C to
        equal the total distance from A to B and B to C": interval
        arithmetic on the per-level distance ranges over the loops common
        to all three statements.
    """

    a, b = victim.src, killer.src
    if a is not b and (a, b) not in output_pairs:
        return True

    # Distance compatibility on the loops common to A, B and C.
    depth = min(
        common_depth(a, b),
        common_depth(b, victim.dst),
        len(victim.deltas),
    )
    if depth <= 0 or a is b:
        return False
    victim_ranges = distance_ranges(victim)
    killer_ranges = distance_ranges(killer)
    for level in range(min(depth, len(killer_ranges))):
        v = victim_ranges[level]
        k = killer_ranges[level]
        # total = (A->B distance) + (B->C distance); A->B distance >= ...
        # We only know the B->C component k; A->B is unconstrained here
        # except it must be >= 0 at the first differing level.  A cheap,
        # sound check: the victim's max distance must be at least the
        # killer's min distance (the killer acts after A).
        if v.hi is not None and k.lo is not None and v.hi < k.lo:
            return True
    return False


def closer_cover_quick_kill(victim: Dependence, killer: Dependence) -> bool:
    """Section 4.5's positive quick test.

    "If we are trying to kill a dependence from A to C with a *covering*
    dependence from B to C, and the dependence from B is always closer
    than the dependence from A, then we know the dependence from A to C is
    killed without having to perform the general test."

    Sound criterion used here: the killer covers C, the two dependences
    share C's full common depth, and the killer's distance is always
    lexicographically smaller — i.e. at some level the killer's maximum
    distance is below the victim's minimum while every outer level is
    pinned to the same constant for both.
    """

    if not killer.covers:
        return False
    if len(victim.deltas) != len(killer.deltas) or not victim.deltas:
        return False
    victim_ranges = distance_ranges(victim)
    killer_ranges = distance_ranges(killer)
    for v, k in zip(victim_ranges, killer_ranges):
        if k.hi is not None and v.lo is not None and k.hi < v.lo:
            return True
        # To keep looking deeper, both must be pinned to the same value.
        if not (v.is_exact and k.is_exact and v.lo == k.lo):
            return False
    return False


@dataclass
class KillRecord:
    victim: Dependence
    killer: Dependence
    killed: bool
    used_omega: bool
    elapsed: float = 0.0


class KillTester:
    """Performs kill tests for dependences sharing a destination."""

    def __init__(
        self,
        symbols: SymbolTable,
        output_pairs: set[tuple[Access, Access]],
        *,
        array_bounds=None,
        max_cases: int = 16,
    ):
        self.symbols = symbols
        self.output_pairs = output_pairs
        self.array_bounds = array_bounds
        self.max_cases = max_cases
        self.records: list[KillRecord] = []

    def kills(self, victim: Dependence, killer: Dependence) -> bool:
        """Does ``killer`` (a write -> dst dependence) kill ``victim``?"""

        if victim is killer or victim.dst is not killer.dst:
            return False
        if not killer.src.is_write:
            return False
        _metrics.inc("analysis.kills_attempted")
        with _span(
            "analysis.kill",
            victim=victim.src,
            killer=killer.src,
            dst=victim.dst,
        ) as sp:
            record = self._decide(victim, killer)
        record.elapsed = sp.duration
        self.records.append(record)
        if record.killed:
            _metrics.inc("analysis.kills_succeeded")
        if record.used_omega:
            _metrics.inc("analysis.kill_omega_tests")
        if sp.duration:
            _metrics.observe("analysis.kill_seconds", sp.duration)
        return record.killed

    def _decide(self, victim: Dependence, killer: Dependence) -> KillRecord:
        """Quick tests first, then the general (Omega-backed) test."""

        if kill_quick_reject(victim, killer, self.output_pairs):
            _metrics.inc("analysis.kill_quick_rejects")
            return KillRecord(victim, killer, False, False)
        if closer_cover_quick_kill(victim, killer):
            return KillRecord(victim, killer, True, False)
        killed = self._general_test(victim, killer)
        return KillRecord(victim, killer, killed, True)

    # ------------------------------------------------------------------
    def _general_test(self, victim: Dependence, killer: Dependence) -> bool:
        pair = victim.pair
        b_ctx = build_instance(killer.src, "b", self.symbols, self.array_bounds)

        # Subscript equality B(j) sub= C(k).
        from .problem import _translate

        coupling = Problem(name="B sub= C")
        extra_domain = Problem(name="[B]")
        extra_domain.extend(b_ctx.domain.constraints)
        if len(killer.src.ref.subscripts) != len(victim.dst.ref.subscripts):
            return False
        for b_sub, c_sub in zip(
            killer.src.ref.subscripts, victim.dst.ref.subscripts
        ):
            lhs = _translate(b_sub, b_ctx, self.symbols, extra_domain)
            rhs = _translate(c_sub, pair.dst_ctx, self.symbols, extra_domain)
            coupling.add_eq(lhs, rhs)

        ab_cases = execution_order_cases(pair.src_ctx, b_ctx)
        bc_cases = execution_order_cases(b_ctx, pair.dst_ctx)
        if not ab_cases or not bc_cases:
            return False
        if len(ab_cases) * len(bc_cases) > self.max_cases:
            _note_conservative(
                _guard.current_subject(), "kill-cases-overflow"
            )
            return False  # conservative

        keep = (
            list(pair.src_ctx.loop_vars)
            + list(pair.dst_ctx.loop_vars)
            + list(pair.delta_vars)
            + pair.sym_vars()
        )
        keep_set = set(keep)
        # Symbolic variables minted for B's own uterm occurrences belong to
        # the existential side and must be projected away with B's loop
        # variables.
        b_side_syms = {occ.value_var for occ in b_ctx.occurrences}
        for occ in b_ctx.occurrences:
            b_side_syms.update(occ.arg_vars)
        cases = [
            Problem(
                list(victim.problem.constraints)
                + list(extra_domain.constraints)
                + list(coupling.constraints)
                + ab
                + bc,
                name="kill-rhs",
            )
            for ab in ab_cases
            for bc in bc_cases
        ]
        feasible = submit_batch([SolverQuery.sat(case) for case in cases])
        survivors = [
            case for case, satisfiable in zip(cases, feasible) if satisfiable
        ]
        projections = submit_batch(
            [
                SolverQuery.project(
                    case,
                    [
                        v
                        for v in case.variables()
                        if v in keep_set
                        or (v.is_symbolic and v not in b_side_syms)
                    ],
                )
                for case in survivors
            ]
        )
        pieces: list[Problem] = []
        for projection in projections:
            if not projection.exact_union:
                _note_conservative(
                    _guard.current_subject(), "kill-case-dropped"
                )
                continue  # drop this case, conservative
            pieces.extend(projection.pieces)

        if not pieces:
            return False
        try:
            return implies_union(victim.problem, pieces)
        except BudgetExhausted:
            # Only reachable under the strict ("raise") policy — the
            # solver service degrades this to False itself otherwise.
            raise
        except OmegaComplexityError:
            return False
