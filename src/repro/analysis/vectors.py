"""Direction, distance and restraint vectors (Section 2 of the paper).

A *direction vector* summarizes the possible signs of the dependence
distance per common loop; when the distance is pinned we show the constant
(the paper prints ``(0,0,1,0)``).  A single direction vector is not always
exact — ``di = dj`` compresses to ``(0+,0+)`` which falsely suggests
``(0,+)`` — so we enumerate sign combinations with the Omega test, then
greedily merge boxes only when the merge adds no spurious combination
("partially compressed direction vectors").

A *restraint vector* (Section 2.1.2) is a conjunction of per-level sign
constraints that filters out every lexicographically-negative (or
zero-but-syntactically-backward) solution while keeping every forward one.
When no single restraint vector works the dependence is split, one
dependence per restraint vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..omega import Constraint, LinearExpr, Problem, Variable, ge, le
from ..solver import is_satisfiable, project, satisfiable_batch

__all__ = [
    "DirComponent",
    "DirectionVector",
    "RestraintVector",
    "PLUS",
    "MINUS",
    "ZERO",
    "ZERO_PLUS",
    "STAR",
    "direction_vectors",
    "restraint_vectors",
    "component_bounds",
    "lexicographically_bad_exists",
]


@dataclass(frozen=True)
class DirComponent:
    """Allowed distance range for one loop: ``lo <= d <= hi`` (None = open)."""

    lo: int | None
    hi: int | None

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty direction component {self.lo}:{self.hi}")

    def constraints(self, delta: Variable) -> list[Constraint]:
        found: list[Constraint] = []
        if self.lo is not None:
            found.append(ge(LinearExpr({delta: 1}, -self.lo)))
        if self.hi is not None:
            found.append(ge(LinearExpr({delta: -1}, self.hi)))
        return found

    @property
    def is_exact(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def is_star(self) -> bool:
        return self.lo is None and self.hi is None

    def admits(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def admits_sign(self, sign: int) -> bool:
        """Does the component allow some value with the given sign?"""

        if sign < 0:
            return self.lo is None or self.lo < 0
        if sign > 0:
            return self.hi is None or self.hi > 0
        return self.admits(0)

    def merge(self, other: "DirComponent") -> "DirComponent":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return DirComponent(lo, hi)

    def __str__(self) -> str:
        if self.is_star:
            return "*"
        if self.is_exact:
            return str(self.lo)
        if self.lo is not None and self.hi is not None:
            if (self.lo, self.hi) == (0, 1):
                return "0:1"
            return f"{self.lo}:{self.hi}"
        if self.lo == 0:
            return "0+"
        if self.lo == 1:
            return "+"
        if self.hi == 0:
            return "0-"
        if self.hi == -1:
            return "-"
        if self.lo is not None:
            return f"{self.lo}+"
        return f"{self.hi}-"


PLUS = DirComponent(1, None)
MINUS = DirComponent(None, -1)
ZERO = DirComponent(0, 0)
ZERO_PLUS = DirComponent(0, None)
ZERO_MINUS = DirComponent(None, 0)
STAR = DirComponent(None, None)


class DirectionVector(tuple):
    """A tuple of :class:`DirComponent` with paper-style rendering."""

    def __new__(cls, components: Iterable[DirComponent]):
        return super().__new__(cls, tuple(components))

    def constraints(self, deltas: Sequence[Variable]) -> list[Constraint]:
        found: list[Constraint] = []
        for component, delta in zip(self, deltas):
            found.extend(component.constraints(delta))
        return found

    @property
    def is_loop_independent(self) -> bool:
        return all(c.is_exact and c.lo == 0 for c in self)

    def admits(self, distance: Sequence[int]) -> bool:
        return all(c.admits(v) for c, v in zip(self, distance))

    def lexicographically_positive_part(self) -> bool:
        """Could some admitted distance be lexicographically positive?"""

        for component in self:
            if component.hi is None or component.hi > 0:
                return True
            if not component.admits(0):
                return False
        return False

    def __str__(self) -> str:
        return "(" + ",".join(str(c) for c in self) + ")"


RestraintVector = DirectionVector  # same structure, different role


# ---------------------------------------------------------------------------
# Direction vector computation
# ---------------------------------------------------------------------------


def component_bounds(
    problem: Problem, delta: Variable, limit: int = 64
) -> DirComponent:
    """Constant bounds on one distance variable, via projection.

    Projects the problem onto ``delta`` alone (eliminating symbolic
    constants too, so the bounds are absolute integers) and reads the
    interval off the real shadow — safe, since the real shadow is a
    superset of the true projection.
    """

    projection = project(problem, [delta])
    shadow = projection.real
    lo: int | None = None
    hi: int | None = None
    for constraint in shadow.constraints:
        coeff = constraint.coeff(delta)
        if coeff == 0:
            continue
        if any(v.is_wildcard for v in constraint.variables()):
            # A stride equality (e.g. d - 2*sigma = 0, "d is even") is not
            # an interval bound; skip it — the interval stays conservative.
            continue
        if constraint.is_equality:
            value = -constraint.expr.constant // coeff
            return DirComponent(value, value)
        # normalized: coeff is +-1 after gcd reduction.
        # a*d + c >= 0 with a > 0:  d >= ceil(-c/a) = -floor(c/a)
        # -a*d + c >= 0 with a > 0: d <= floor(c/a)
        if coeff > 0:
            bound = -(constraint.expr.constant // coeff)
            lo = bound if lo is None else max(lo, bound)
        else:
            bound = constraint.expr.constant // -coeff
            hi = bound if hi is None else min(hi, bound)
    if lo is not None and hi is not None and lo == hi:
        return DirComponent(lo, hi)
    return DirComponent(lo, hi)


_SIGNS = (MINUS, ZERO, PLUS)


def direction_vectors(
    problem: Problem,
    deltas: Sequence[Variable],
    *,
    refine_distances: bool = True,
    state=None,
) -> list[DirectionVector]:
    """Enumerate exact sign combinations, then compress into boxes.

    The result is a set of partially compressed direction vectors whose
    union exactly covers the satisfiable sign combinations: merging never
    introduces a sign combination that the problem cannot realize.

    ``state`` (a :class:`repro.solver.plan.PlanState` for ``problem``)
    substitutes each trial with its exactly-reduced core, so the search
    probes small shared-prefix problems instead of rebuilding the full
    conjunction per branch.  Answers — and therefore the enumerated
    combinations — are identical either way; the distance-refinement
    projections below deliberately keep using the full problem, since
    :func:`component_bounds` reads bounds off a (path-dependent) real
    shadow rather than an exact answer.
    """

    if not deltas:
        probe = problem if state is None else state.probe()
        return [DirectionVector(())] if is_satisfiable(probe) else []

    combos: list[tuple[DirComponent, ...]] = []

    def explore(
        prefix: tuple[DirComponent, ...],
        constraints: list[Constraint],
        state,
    ):
        level = len(prefix)
        if level == len(deltas):
            combos.append(prefix)
            return
        extras = [sign.constraints(deltas[level]) for sign in _SIGNS]
        if state is None:
            trials = [
                Problem(list(problem.constraints) + constraints + extra)
                for extra in extras
            ]
        else:
            trials = [state.probe(extra) for extra in extras]
        feasible = satisfiable_batch(trials)
        for sign, extra, satisfiable in zip(_SIGNS, extras, feasible):
            if satisfiable:
                # A child at the deepest level only records its combo, so
                # extending (and reducing) its state would be dead work.
                child = (
                    state.extend(extra, drop=deltas[level])
                    if state is not None and level + 1 < len(deltas)
                    else None
                )
                explore(prefix + (sign,), constraints + extra, child)

    explore((), [], state)
    if not combos:
        return []

    boxes = _merge_boxes(combos, set(combos))

    vectors: list[DirectionVector] = []
    for box in boxes:
        if refine_distances:
            refined: list[DirComponent] = []
            context = Problem(list(problem.constraints))
            for component, delta in zip(box, deltas):
                context = Problem(
                    list(context.constraints) + component.constraints(delta)
                )
            for component, delta in zip(box, deltas):
                bounds = component_bounds(context, delta)
                merged = DirComponent(
                    bounds.lo
                    if bounds.lo is not None
                    else component.lo,
                    bounds.hi if bounds.hi is not None else component.hi,
                )
                refined.append(merged)
            vectors.append(DirectionVector(refined))
        else:
            vectors.append(DirectionVector(box))
    return vectors


def _merge_boxes(
    boxes: list[tuple[DirComponent, ...]], realizable: set[tuple[DirComponent, ...]]
) -> list[tuple[DirComponent, ...]]:
    """Greedily merge sign boxes along single dimensions, exactly.

    Two boxes differing in one component merge when every sign combination
    of the merged box is realizable — the paper's criterion for compressing
    without falsely suggesting e.g. (0,+) from {(+,+),(0,0)}.
    """

    def signs_in(component: DirComponent) -> list[DirComponent]:
        return [s for s in _SIGNS if _sign_within(s, component)]

    def box_combos(box: tuple[DirComponent, ...]):
        import itertools as it

        pools = [signs_in(c) for c in box]
        return it.product(*pools)

    current = list(dict.fromkeys(boxes))
    changed = True
    while changed:
        changed = False
        for a_index in range(len(current)):
            for b_index in range(a_index + 1, len(current)):
                a, b = current[a_index], current[b_index]
                diff = [i for i in range(len(a)) if a[i] != b[i]]
                if len(diff) != 1:
                    continue
                i = diff[0]
                merged_component = a[i].merge(b[i])
                merged = a[:i] + (merged_component,) + a[i + 1 :]
                if all(c in realizable for c in box_combos(merged)):
                    current.pop(b_index)
                    current.pop(a_index)
                    current.append(merged)
                    changed = True
                    break
            if changed:
                break
    return current


def _sign_within(sign: DirComponent, component: DirComponent) -> bool:
    if sign is MINUS:
        return component.lo is None or component.lo < 0
    if sign is ZERO:
        return component.admits(0)
    return component.hi is None or component.hi > 0


# ---------------------------------------------------------------------------
# Restraint vectors
# ---------------------------------------------------------------------------


def lexicographically_bad_exists(
    problem: Problem,
    deltas: Sequence[Variable],
    forward: bool,
    start: int = 0,
    *,
    state=None,
) -> bool:
    """Does the problem admit a lexicographically-negative distance, or an
    all-zero distance when the pair is not syntactically forward?

    ``state``, when given, must be a plan state whose core already carries
    ``problem``'s constraints; the per-level probes then run against the
    reduced core (identical answers, see :mod:`repro.omega.partial`).
    """

    prefix: list[Constraint] = []
    for level in range(start, len(deltas)):
        negative_extra = [le(LinearExpr({deltas[level]: 1}), -1)]
        if state is None:
            negative = Problem(
                list(problem.constraints) + prefix + negative_extra
            )
        else:
            negative = state.probe(negative_extra)
        if is_satisfiable(negative):
            return True
        zero_extra = ZERO.constraints(deltas[level])
        prefix.extend(zero_extra)
        # The extended state is only probed by a later level or by the
        # final all-zero check of a non-forward pair.
        if state is not None and (level + 1 < len(deltas) or not forward):
            state = state.extend(zero_extra, drop=deltas[level])
    if not forward:
        if state is None:
            zero = Problem(list(problem.constraints) + prefix)
        else:
            zero = state.probe()
        if is_satisfiable(zero):
            return True
    return False


def restraint_vectors(
    problem: Problem,
    deltas: Sequence[Variable],
    forward: bool,
    *,
    state=None,
) -> list[RestraintVector]:
    """Compute a set of restraint vectors for a dependence problem.

    Each returned vector's constraints exclude every lexicographically
    backward solution; their union covers every forward solution.  The
    greedy search prefers a single vector with few constraints (``(0+,*)``
    beats splitting into ``(+,*) , (0,+)``) and splits only when forced,
    exactly as Section 2.1.2 prescribes.

    ``state`` substitutes each satisfiability probe with the plan's
    reduced core (same answers, same probe order and count).
    """

    def recurse(
        current: Problem, level: int, state
    ) -> list[tuple[DirComponent, ...]]:
        probe = current if state is None else state.probe()
        if not is_satisfiable(probe):
            return []
        if level == len(deltas):
            return [()] if forward else []
        delta = deltas[level]
        negative_extra = [le(LinearExpr({delta: 1}), -1)]
        can_negative = is_satisfiable(
            Problem(list(current.constraints) + negative_extra)
            if state is None
            else state.probe(negative_extra)
        )
        zero_extra = ZERO.constraints(delta)
        at_zero = Problem(list(current.constraints) + zero_extra)
        zero_state = (
            None if state is None else state.extend(zero_extra, drop=delta)
        )
        zero_bad = lexicographically_bad_exists(
            at_zero, deltas, forward, level + 1, state=zero_state
        )
        if not zero_bad:
            head = ZERO_PLUS if can_negative else STAR
            return [(head,) + (STAR,) * (len(deltas) - level - 1)]
        # Splitting: strictly-positive head (rest unconstrained) plus the
        # zero-head restraints of the residual problem.
        results: list[tuple[DirComponent, ...]] = []
        plus_extra = PLUS.constraints(delta)
        plus_head = (
            Problem(list(current.constraints) + plus_extra)
            if state is None
            else state.probe(plus_extra)
        )
        if is_satisfiable(plus_head):
            results.append((PLUS,) + (STAR,) * (len(deltas) - level - 1))
        for tail in recurse(at_zero, level + 1, zero_state):
            results.append((ZERO,) + tail)
        return results

    return [DirectionVector(v) for v in recurse(problem, 0, state)]
