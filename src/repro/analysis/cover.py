"""Covering and terminating dependences (Sections 4.2 and 4.3).

A dependence from write A to access B *covers* B iff every location B
accesses was previously written by A::

    forall j, Sym:  j in [B]
      =>  exists i . i in [A] and A(i) << B(j) and A(i) sub= B(j)

The mirror image: a dependence from A to write B *terminates* A iff every
location A accesses is subsequently overwritten by B.

The quick test from Section 4.5 applies first: a dependence that cannot
have distance 0 in some common loop cannot cover the first trip through
that loop, so the general test is skipped (the engine then relies on kill
tests instead, exactly as the paper describes).
"""

from __future__ import annotations

from ..guard import budget as _guard
from ..obs.audit import note_conservative as _note_conservative
from ..obs.instrument import metrics as _metrics
from ..obs.instrument import span as _span
from ..omega import Problem, Variable
from ..omega.errors import BudgetExhausted, OmegaComplexityError
from ..solver import implies, implies_union, is_satisfiable, project
from .dependences import Dependence

__all__ = ["covers_destination", "terminates_source", "cover_quick_reject"]


def cover_quick_reject(dep: Dependence) -> bool:
    """True when the quick test rules out covering.

    "If a dependence from A to B does not include the distance 0 in some
    loop l, it can not cover the execution of B the first time through l."
    """

    for level in range(len(dep.deltas)):
        if not any(vector[level].admits(0) for vector in dep.directions):
            _metrics.inc("analysis.cover_quick_rejects")
            return True
    return False


def _check_universal_coverage(
    dep: Dependence, keep: list[Variable], lhs: Problem
) -> bool:
    """Does ``lhs`` imply the projection of the dependence onto ``keep``?"""

    if not is_satisfiable(lhs):
        return True
    projection = project(dep.problem, keep)
    if not projection.pieces:
        return False
    try:
        return implies_union(lhs, projection.pieces)
    except BudgetExhausted:
        # Only reachable under the strict ("raise") policy — the solver
        # service degrades this to False itself otherwise.
        raise
    except OmegaComplexityError:
        # Sound fallback: test against the dark shadow only.
        _note_conservative(
            _guard.current_subject(), "cover-dark-shadow-fallback"
        )
        return implies(lhs, projection.dark)


def covers_destination(dep: Dependence, *, use_quick_test: bool = True) -> bool:
    """Does this dependence cover its destination access?"""

    if use_quick_test and cover_quick_reject(dep):
        return False
    _metrics.inc("analysis.covers_tested")
    with _span("analysis.cover", src=dep.src, dst=dep.dst) as sp:
        keep = list(dep.pair.dst_ctx.loop_vars) + dep.pair.sym_vars()
        lhs = Problem(
            list(dep.pair.dst_ctx.domain.constraints)
            + list(dep.pair.assertions),
            name=f"[{dep.dst}]",
        )
        covers = _check_universal_coverage(dep, keep, lhs)
    if sp.duration:
        _metrics.observe("analysis.cover_seconds", sp.duration)
    if covers:
        _metrics.inc("analysis.covers_found")
    return covers


def terminates_source(dep: Dependence, *, use_quick_test: bool = True) -> bool:
    """Does the destination write overwrite everything the source accessed?

    Only meaningful when the destination is a write (output or anti
    dependences, or flow dependences considered from the source's side).
    """

    if not dep.dst.is_write:
        return False
    if use_quick_test and cover_quick_reject(dep):
        return False
    with _span("analysis.terminate", src=dep.src, dst=dep.dst):
        keep = list(dep.pair.src_ctx.loop_vars) + dep.pair.sym_vars()
        lhs = Problem(
            list(dep.pair.src_ctx.domain.constraints)
            + list(dep.pair.assertions),
            name=f"[{dep.src}]",
        )
        terminates = _check_universal_coverage(dep, keep, lhs)
    if terminates:
        _metrics.inc("analysis.terminators_found")
    return terminates
