"""Statement-level dependence graphs and their classic consumers.

Builds a directed multigraph over statements from an
:class:`AnalysisResult` (optionally restricted to live dependences) and
answers the questions loop restructurers ask of it:

* strongly connected components (recurrences),
* which statements are vectorizable (not part of any dependence cycle
  carried at the candidate level — Allen & Kennedy's codegen criterion),
* a topological statement order for loop distribution.

Uses :mod:`networkx` for the graph algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from ..ir.ast import Loop, Program, Statement
from .dependences import Dependence, DependenceKind, DependenceStatus
from .results import AnalysisResult

__all__ = [
    "dependence_graph",
    "recurrences",
    "vectorizable_statements",
    "distribution_order",
]


def dependence_graph(
    result: AnalysisResult,
    *,
    live_only: bool = True,
    kinds: Iterable[DependenceKind] = (
        DependenceKind.FLOW,
        DependenceKind.ANTI,
        DependenceKind.OUTPUT,
    ),
) -> "nx.MultiDiGraph":
    """The statement-level dependence graph.

    Nodes are :class:`~repro.ir.ast.Statement` objects; each edge carries
    its :class:`Dependence` under the ``"dependence"`` attribute — and,
    for audited results, the matching :class:`~repro.obs.ProvenanceRecord`
    under ``"provenance"`` (None when the run was not audited).
    """

    wanted = set(kinds)
    graph = nx.MultiDiGraph()
    for statement in result.program.statements:
        graph.add_node(statement)
    provenance_index = {
        record.subject: record for record in result.provenance
    }
    for dep in result.all_dependences():
        if dep.kind not in wanted:
            continue
        if live_only and dep.status is not DependenceStatus.LIVE:
            continue
        graph.add_edge(
            dep.src.statement,
            dep.dst.statement,
            dependence=dep,
            provenance=provenance_index.get(dep.subject()),
        )
    return graph


def recurrences(result: AnalysisResult, **kwargs) -> list[set[Statement]]:
    """Non-trivial strongly connected components (dependence cycles).

    A single statement forms a recurrence only if it has a self edge.
    """

    graph = dependence_graph(result, **kwargs)
    found: list[set[Statement]] = []
    for component in nx.strongly_connected_components(graph):
        if len(component) > 1:
            found.append(set(component))
            continue
        (statement,) = component
        if graph.has_edge(statement, statement):
            found.append({statement})
    return found


def vectorizable_statements(
    result: AnalysisResult, loop: Loop
) -> set[Statement]:
    """Statements inside ``loop`` that vectorize along it.

    Allen-Kennedy style: a statement vectorizes at a loop when it is not
    part of a dependence cycle among the statements of that loop, once
    loop-independent edges inside one iteration are kept and the cycle
    check is done over live dependences only.
    """

    inside = [s for s in result.program.statements if loop in s.loops]
    graph = dependence_graph(result)
    sub = graph.subgraph(inside)
    vectorizable: set[Statement] = set()
    for component in nx.strongly_connected_components(sub):
        if len(component) == 1:
            (statement,) = component
            if not sub.has_edge(statement, statement):
                vectorizable.add(statement)
    return vectorizable


def distribution_order(result: AnalysisResult, loop: Loop) -> list[list[Statement]]:
    """Groups of statements in a legal loop-distribution order.

    Condenses the dependence subgraph of the loop body into its SCCs and
    returns them topologically sorted — each group may become its own
    loop, recurrences staying together.
    """

    inside = [s for s in result.program.statements if loop in s.loops]
    graph = dependence_graph(result).subgraph(inside)
    condensation = nx.condensation(nx.DiGraph(graph))
    order: list[list[Statement]] = []
    for node in nx.topological_sort(condensation):
        members = condensation.nodes[node]["members"]
        order.append(sorted(members, key=lambda s: s.position))
    return order
