"""Dependence objects and their computation.

``compute_dependences(src, dst, kind, ...)`` builds the pair problem, finds
restraint vectors, and returns one :class:`Dependence` per restraint vector
(the paper: "such dependences are split into several dependences, one for
each restraint vector"), each carrying its direction vectors and status
flags that later phases (refinement, covering, killing) update.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..ir.ast import Access
from ..omega import Constraint, Problem, Variable
from ..solver import is_satisfiable, satisfiable_batch
from .problem import PairProblem, SymbolTable, build_pair_problem
from .vectors import (
    DirectionVector,
    RestraintVector,
    direction_vectors,
    restraint_vectors,
)

__all__ = ["DependenceKind", "DependenceStatus", "Dependence", "compute_dependences"]


class DependenceKind(enum.Enum):
    """The classic dependence classification."""

    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    INPUT = "input"


class DependenceStatus(enum.Enum):
    """Whether the extended analysis eliminated a dependence, and how."""

    LIVE = "live"
    KILLED = "killed"       # an intervening write provably intercepts it
    COVERED = "covered"     # eliminated because a covering write precedes it
    REFUTED = "refuted"     # ruled out by a user-answered symbolic query


@dataclass
class Dependence:
    """One dependence (for one restraint vector) between two accesses."""

    kind: DependenceKind
    src: Access
    dst: Access
    pair: PairProblem
    restraint: RestraintVector
    #: domain + coupling + restraint constraints: all instances of this
    #: dependence (lexicographically forward by construction).
    problem: Problem
    directions: list[DirectionVector] = field(default_factory=list)

    status: DependenceStatus = DependenceStatus.LIVE
    refined: bool = False
    #: The direction vectors before refinement (when refined).
    unrefined_directions: list[DirectionVector] = field(default_factory=list)
    #: True when this dependence covers its destination (every location the
    #: destination accesses was previously written by the source).
    covers: bool = False
    #: The dependence that killed/covered this one, when dead.
    eliminated_by: "Dependence | None" = None

    @property
    def deltas(self) -> tuple[Variable, ...]:
        return self.pair.delta_vars

    @property
    def is_loop_independent(self) -> bool:
        return all(
            vector.is_loop_independent for vector in self.directions
        ) and bool(self.directions)

    def carrier_level(self) -> int | None:
        """The single loop level carrying this dependence, if unique.

        Level 1 is the outermost common loop; ``None`` when the carrier is
        not unique across direction vectors; ``0`` for loop-independent.
        """

        levels: set[int] = set()
        for vector in self.directions:
            level = 0
            for index, component in enumerate(vector, start=1):
                if component.is_exact and component.lo == 0:
                    continue
                if component.lo is not None and component.lo >= 1:
                    level = index
                    break
                level = -1  # ambiguous sign at this level
                break
            if level == -1:
                return None
            levels.add(level)
        if len(levels) == 1:
            return levels.pop()
        return None

    def direction_text(self) -> str:
        if not self.deltas:
            return ""
        return ", ".join(str(v) for v in self.directions)

    def subject(self) -> str:
        """The stable explain/audit/guard key — no mutable status tags."""

        return f"{self.kind.value}: {self.src} -> {self.dst}"

    def tags(self) -> str:
        letters = ""
        if self.covers:
            letters += "C"
        if self.status is DependenceStatus.COVERED:
            letters += "c"
        if self.status is DependenceStatus.KILLED:
            letters += "k"
        if self.refined:
            letters += "r"
        return letters

    def describe(self) -> str:
        tag = f" [{self.tags()}]" if self.tags() else ""
        return (
            f"{self.kind.value}: {self.src} -> {self.dst} "
            f"{self.direction_text()}{tag}"
        )

    def __str__(self) -> str:
        return self.describe()


def compute_dependences(
    src: Access,
    dst: Access,
    kind: DependenceKind,
    symbols: SymbolTable | None = None,
    *,
    assertions: Iterable[Constraint] = (),
    array_bounds=None,
    want_directions: bool = True,
    plan=None,
) -> list[Dependence]:
    """All dependences of ``kind`` from src to dst (one per restraint vector).

    Returns an empty list when the pair problem has no lexicographically
    forward solutions — i.e. there is no dependence.

    ``plan`` (a :class:`repro.analysis.plan.QueryPlan`) supplies shared
    instance contexts and an exactly-reduced elimination prefix for the
    satisfiability probes.  The questions asked — count, kind and order —
    and their answers are identical with or without a plan; only the
    submitted problems shrink.  The :class:`Dependence` objects always
    carry the *full* constrained problems, since downstream refinement,
    cover and kill tests project them.
    """

    if plan is not None:
        pair = plan.pair_problem(src, dst)
    else:
        pair = build_pair_problem(
            src, dst, symbols, assertions=assertions, array_bounds=array_bounds
        )
    base = pair.full()
    state = None if plan is None else plan.prepare(base, pair.delta_vars)
    if not is_satisfiable(base if state is None else state.probe()):
        return []

    restraints = restraint_vectors(
        base, pair.delta_vars, pair.forward, state=state
    )
    constrained_problems = [
        Problem(
            list(base.constraints) + restraint.constraints(pair.delta_vars),
            name=base.name,
        )
        for restraint in restraints
    ]
    if state is None:
        probes = constrained_problems
    else:
        probes = [
            state.probe(restraint.constraints(pair.delta_vars))
            for restraint in restraints
        ]
    feasible = satisfiable_batch(probes)
    found: list[Dependence] = []
    for restraint, constrained, satisfiable in zip(
        restraints, constrained_problems, feasible
    ):
        if not satisfiable:
            continue
        directions: list[DirectionVector] = []
        if want_directions:
            constrained_state = (
                None
                if state is None
                else state.extend(restraint.constraints(pair.delta_vars))
            )
            directions = [
                v
                for v in direction_vectors(
                    constrained, pair.delta_vars, state=constrained_state
                )
                if _forward_vector(v, pair.forward)
            ]
            if pair.delta_vars and not directions:
                continue
        found.append(
            Dependence(kind, src, dst, pair, restraint, constrained, directions)
        )
    return found


def _forward_vector(vector: DirectionVector, forward: bool) -> bool:
    """Keep only vectors with a lexicographically-acceptable part.

    Restraint constraints already exclude backward solutions; this filter
    drops the presentation-only vectors that would render as pure zero for
    a non-forward pair.
    """

    if not len(vector):
        return forward
    if vector.is_loop_independent:
        return forward
    return True
