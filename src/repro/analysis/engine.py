"""The analysis driver: full-program dependence analysis with array kills.

Follows the paper's pipeline (Section 4):

1. compute all output dependences (they feed the quick tests for killing
   and refinement);
2. compute anti dependences (unchanged by the extended analysis, as in the
   paper's implementation);
3. for each array read, compute the apparent flow dependences from every
   write; refine each; check covering; use covers to rule out writes that
   precede the coverer completely; check surviving dependences pairwise for
   kills.

Timing and classification per array pair is recorded for the Figure 6/7
reproductions.  All timing is span-based (``repro.obs.trace``): the engine
wraps its phases and per-pair work in ``span(...)`` blocks and derives
:class:`PairRecord` / :class:`KillTiming` durations from them, so the same
substrate feeds the figures, Chrome-trace export and the metrics registry.
With ``explain=True`` the engine additionally records a structured decision
trail (:class:`repro.obs.explain.ExplainLog`) of why each dependence was
refined, covered, killed or kept.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import asdict as _asdict, dataclass, field, replace as _replace
from typing import Iterable, Sequence

from ..guard import Budget, DegradationLog
from ..guard import budget as _guard
from ..guard import faults as _faults
from ..ir.ast import Access, Program
from ..obs.audit import AuditLog, ProvenanceRecord, auditing as _auditing
from ..obs.explain import ExplainLog
from ..obs.instrument import Tracer
from ..obs.instrument import metrics as _metrics
from ..obs.instrument import span as _span
from ..obs.instrument import tracing as _tracing
from ..obs.instrument import tracing_active as _tracing_active
from ..obs.telemetry.context import current_run as _current_run
from ..obs.telemetry.events import EventBus, current_bus as _current_bus
from ..omega import Constraint
from ..solver import (
    SolverService,
    current_service,
    default_cache_enabled,
    default_cache_size,
    default_workers,
)
from .cover import cover_quick_reject, covers_destination, terminates_source
from .dependences import (
    Dependence,
    DependenceKind,
    DependenceStatus,
    compute_dependences,
)
from .kills import KillTester, kill_quick_reject
from .plan import QueryPlan, default_planner_enabled
from .problem import SymbolTable, common_depth
from .refine import refine_dependence
from .results import AnalysisResult, KillTiming, PairCategory, PairRecord

__all__ = ["AnalysisOptions", "analyze", "Analyzer"]


def _subject(dep: Dependence) -> str:
    """A stable explain-mode key for a dependence (no mutable tags)."""

    return dep.subject()


@dataclass
class _ReadSink:
    """Per-read collection of side outputs (explain decisions, timing
    records, provenance).  Each flow task writes only to its own sink, so
    tasks can run concurrently; the engine merges sinks in read order
    afterwards."""

    explain: ExplainLog | None
    #: Audit mode only: provenance is collected per read, merged in read
    #: order (the bit-identity contract shared with explain mode).
    audit: bool = False
    #: Event-bus mode: lifecycle entries (kind, subject, stage, detail)
    #: are *recorded* here on whatever thread runs the task and
    #: *delivered* to the bus at the engine's read-order merge points,
    #: so the event stream is bit-identical across worker counts.
    publish: bool = False
    lifecycle: list[tuple] = field(default_factory=list)
    pair_records: list[PairRecord] = field(default_factory=list)
    kill_timings: list[KillTiming] = field(default_factory=list)
    provenance: list[ProvenanceRecord] = field(default_factory=list)
    #: Planned (fused) traversal only: this read's anti dependences and
    #: their provenance, computed in the same task as the flow pipeline
    #: and merged back read-major — the legacy anti-phase order.
    anti: list[Dependence] = field(default_factory=list)
    anti_provenance: list[ProvenanceRecord] = field(default_factory=list)
    #: Flow pairs the Omega test proved independent: (write, read).
    independents: list[tuple[Access, Access]] = field(default_factory=list)
    #: Per-subject decision trail, appended in pipeline order.
    events: dict[str, list[tuple[str, str]]] = field(default_factory=dict)
    #: Subject -> whether the deciding kill consulted the Omega test.
    kill_used: dict[str, bool] = field(default_factory=dict)

    def note_event(self, subject: str, stage: str, detail: str) -> None:
        if self.audit:
            self.events.setdefault(subject, []).append((stage, detail))

    def note_lifecycle(
        self,
        kind: str,
        subject: str,
        stage: str | None = None,
        detail: str | None = None,
    ) -> None:
        if self.publish:
            self.lifecycle.append((kind, subject, stage, detail))


@dataclass
class AnalysisOptions:
    """Configuration for :func:`analyze`."""

    #: Master switch: refinement + covering + killing (the paper's
    #: "extended analysis").  Off = "standard analysis".
    extended: bool = True
    refine: bool = True
    cover: bool = True
    kill: bool = True
    #: Extension: also test terminating dependences (Section 4.3; the
    #: paper's implementation did not exercise this path).
    terminate: bool = False
    #: Extension: attempt range ("partial") refinements like (0:1,1).
    partial_refine: bool = False
    #: Extension: apply refinement to anti/output dependences as well.
    extend_all_kinds: bool = False
    #: Extension: also compute input (read-read) dependences, used by
    #: locality analyses; off by default like the paper.
    input_deps: bool = False
    #: User assertions over symbolic constants, as omega Constraints on
    #: Variable(name, "sym").
    assertions: tuple[Constraint, ...] = ()
    #: Record per-pair timings (adds a second, standard-only pass).
    record_timings: bool = False
    #: Record a structured decision trail (why each dependence was killed,
    #: covered, refined or kept) in ``result.explain``.
    explain: bool = False
    #: Record per-dependence provenance (deciding stage, query footprint,
    #: exactness, degradations) in ``result.provenance`` — the precision
    #: audit layer behind ``python -m repro audit``.  Records are
    #: bit-identical across ``workers`` and cache settings.
    audit: bool = False
    #: Memoize Omega queries on their canonical form for the duration of
    #: the analysis (bit-identical results either way).  Defaults to on
    #: unless the ``REPRO_NO_CACHE`` environment variable is set.  When a
    #: cache is already active on this thread (an enclosing
    #: ``repro.omega.caching(...)`` scope) the engine reuses it, sharing
    #: hits across programs.
    cache: bool = field(default_factory=default_cache_enabled)
    #: LRU capacity of the per-analysis cache (``REPRO_CACHE_SIZE`` or
    #: 4096 entries).
    cache_size: int = field(default_factory=default_cache_size)
    #: Solver worker threads (``REPRO_WORKERS`` or 1).  With 1 the engine
    #: runs today's exact serial pipeline; with more, independent per-read
    #: flow tasks and solver batches overlap on a thread pool, merged back
    #: deterministically in program order (results are identical).
    workers: int = field(default_factory=default_workers)
    #: Solver execution backend (``REPRO_BACKEND`` or "thread"): where
    #: queries physically run.  "serial" pins everything inline, "thread"
    #: overlaps batches on a dispatcher pool, "process" additionally
    #: ships raw solver primitives to a process pool (true multi-core;
    #: see repro.solver.backends).  Results are bit-identical across
    #: backends.
    backend: str | None = None
    #: An explicit :class:`repro.solver.SolverService` to use instead of
    #: building one (advanced: lets callers share a service — and its memo
    #: — across many ``analyze`` calls).
    solver: "SolverService | None" = None
    #: Wall-clock deadline for the whole analysis, in milliseconds (the
    #: CLI's ``--deadline-ms``).  Implies a governed run: when the
    #: deadline passes, remaining Omega queries degrade to their sound
    #: conservative answers (see ``policy``) instead of running on.
    deadline_ms: float | None = None
    #: Full resource budget (``repro.guard.Budget``) for governed runs;
    #: ``deadline_ms`` is merged in when both are given.
    budget: "Budget | None" = None
    #: What to do when the budget runs out: ``"degrade"`` substitutes
    #: sound conservative answers and records every substitution in
    #: ``result.degradations``; ``"raise"`` (the CLI's ``--strict``)
    #: propagates :class:`repro.omega.BudgetExhausted` to the caller.
    policy: str = "degrade"
    #: Single-pass query planner (:mod:`repro.analysis.plan`): group pairs
    #: by iteration space, share base constraint systems and exact
    #: Fourier-Motzkin prefixes across the whole-program traversal.
    #: Results, provenance and explain trails are bit-identical to the
    #: legacy per-pair path.  Defaults to on unless ``REPRO_PLANNER=0``;
    #: governed runs (a budget, deadline or fault plan) always fall back
    #: to the legacy path so degradation semantics stay untouched.
    planner: bool = field(default_factory=default_planner_enabled)

    def effective_budget(self) -> "Budget | None":
        """The merged budget, or None when this run is ungoverned."""

        budget = self.budget
        if self.deadline_ms is not None:
            if budget is None:
                budget = Budget(deadline_ms=self.deadline_ms)
            elif budget.deadline_ms is None:
                budget = _replace(budget, deadline_ms=self.deadline_ms)
        return budget


def analyze(program: Program, options: AnalysisOptions | None = None) -> AnalysisResult:
    """Analyze a program and return all dependences with status flags."""

    return Analyzer(program, options or AnalysisOptions()).run()


class Analyzer:
    """Stateful driver behind :func:`analyze`; exposes intermediate data
    (output-dependence pairs, terminators) for advanced callers."""

    def __init__(self, program: Program, options: AnalysisOptions):
        self.program = program
        self.options = options
        self.symbols = SymbolTable()
        self.result = AnalysisResult(program)
        self.output_pairs: set[tuple[Access, Access]] = set()
        self.self_output_nonzero: dict[Access, set[int]] = {}
        #: For options.terminate: write A -> terminating output deps A->B
        #: (B overwrites everything A wrote).
        self.terminators: dict[Access, list[Dependence]] = {}
        self.explain: ExplainLog | None = (
            ExplainLog() if options.explain else None
        )
        self.result.explain = self.explain
        self.audit: AuditLog | None = AuditLog() if options.audit else None
        self.result.audit = self.audit
        #: The live event bus, when one is publishing (set by :meth:`run`).
        self.bus: EventBus | None = None
        #: The solver service every query of this run goes through (set by
        #: :meth:`run`; adopted or private, see there).
        self.service: SolverService | None = None
        #: The single-pass query plan (set by :meth:`run` for ungoverned
        #: planner runs; None selects the legacy per-pair pipeline).
        self.plan: QueryPlan | None = None

    # ------------------------------------------------------------------
    def run(self) -> AnalysisResult:
        # Timing records are span-derived; when the caller asked for them
        # without installing a tracer, run under a private one.
        tracer: Tracer | None = None
        if self.options.record_timings and not _tracing_active():
            tracer = Tracer()
            self.result.trace = tracer
        with ExitStack() as stack:
            if tracer is not None:
                stack.enter_context(_tracing(tracer))
            # Every Omega query goes through one SolverService.  An
            # explicitly-passed or enclosing (activated) service is adopted
            # — sharing its cache across programs, like the old enclosing
            # ``caching(...)`` scope did — and left open; otherwise the
            # engine builds a private one for this run.
            service = self.options.solver
            if service is None:
                service = current_service()
            if service is None:
                service = SolverService.for_options(
                    cache=self.options.cache,
                    cache_size=self.options.cache_size,
                    workers=self.options.workers,
                    backend=self.options.backend,
                )
                stack.callback(service.close)
            self.service = service
            stack.enter_context(service.activate())
            # Governed runs: an explicit budget/deadline, or an active
            # fault-injection plan (chaos runs need the degradation
            # machinery armed even without resource limits).  Default
            # runs skip the scope entirely and stay bit-identical.
            budget = self.options.effective_budget()
            if budget is None and _faults.current_plan() is not None:
                budget = Budget.unlimited()
            if budget is not None:
                log = DegradationLog()
                self.result.degradations = log
                stack.enter_context(
                    _guard.governed(
                        budget, policy=self.options.policy, log=log
                    )
                )
            if self.audit is not None:
                stack.enter_context(_auditing(self.audit))
            self.bus = _current_bus()
            if self.bus is not None:
                self.bus.emit("run.start", self.program.name)
            # The query planner drives ungoverned runs only: under a
            # budget the per-probe degradation shields expect the legacy
            # problem shapes, so governed runs keep the per-pair path.
            if self.options.planner and budget is None:
                self.plan = QueryPlan(
                    self.program,
                    self.symbols,
                    assertions=self.options.assertions,
                    array_bounds=self.program.array_bounds,
                )
            elif self.options.planner:
                _metrics.inc("solver.plan.fallbacks")
                if self.bus is not None:
                    self.bus.emit(
                        "planner.fallback",
                        self.program.name,
                        detail="governed run: per-pair path",
                    )
            # Attribute the run's root span to the active RunContext so
            # exported traces carry the request identity.
            span_attrs = {"program": self.program.name}
            context = _current_run()
            if context is not None:
                span_attrs["run"] = context.run_id
                if context.request_id is not None:
                    span_attrs["request"] = context.request_id
            with _span("analysis.analyze", **span_attrs) as sp:
                self._run_phases()
            if self.audit is not None:
                self._finalize_audit()
            if self.bus is not None:
                self._emit_run_end()
            if sp.duration:
                _metrics.observe("analysis.analyze_seconds", sp.duration)
            if self.options.cache:
                stats = service.cache_stats()
                if stats is not None:
                    self.result.cache_stats = stats
                    _metrics.set_gauge("omega.cache.size", stats["size"])
            self.result.backend_stats = dict(service.backend.info())
        return self.result

    # -- provenance assembly (audit mode) -------------------------------
    def _independent_record(
        self, kind: DependenceKind, src: Access, dst: Access
    ) -> ProvenanceRecord:
        """A pair the Omega test proved dependence-free."""

        return ProvenanceRecord(
            subject=f"{kind.value}: {src} -> {dst}",
            kind=kind.value,
            src=str(src),
            dst=str(dst),
            verdict="independent",
            status="none",
            stage="omega-unsat",
        )

    def _verdict_of(self, dep: Dependence) -> tuple[str, str]:
        """(verdict, deciding stage) from a dependence's *final* state.

        Shared by provenance records and ``pair.verdict`` lifecycle
        events so the two report the same attribution.
        """

        if dep.status is DependenceStatus.LIVE:
            extended = self.options.extended and dep.kind is DependenceKind.FLOW
            return "reported", ("kept" if extended else "standard")
        if dep.status is DependenceStatus.COVERED:
            return "eliminated", "cover"
        killer = dep.eliminated_by
        terminated = killer is not None and killer.kind is DependenceKind.OUTPUT
        return "eliminated", ("terminate" if terminated else "kill")

    def _dependence_record(
        self, dep: Dependence, sink: "_ReadSink | None" = None
    ) -> ProvenanceRecord:
        """One record from a dependence's *final* analysis state."""

        subject = dep.subject()
        decided_by: str | None = None
        used_omega: bool | None = None
        verdict, stage = self._verdict_of(dep)
        if stage == "cover":
            used_omega = False  # structural: source runs before the coverer
        elif stage == "kill" and sink is not None:
            used_omega = sink.kill_used.get(subject)
        if dep.eliminated_by is not None:
            decided_by = dep.eliminated_by.subject()
        unrefined = None
        if dep.refined and dep.unrefined_directions:
            unrefined = ", ".join(str(v) for v in dep.unrefined_directions)
        record = ProvenanceRecord(
            subject=subject,
            kind=dep.kind.value,
            src=str(dep.src),
            dst=str(dep.dst),
            verdict=verdict,
            status=dep.status.value,
            stage=stage,
            decided_by=decided_by,
            direction=dep.direction_text() or None,
            unrefined_direction=unrefined,
            refined=dep.refined,
            covers=dep.covers,
            used_omega=used_omega,
        )
        if sink is not None:
            record.events = list(sink.events.get(subject, ()))
        return record

    def _finalize_audit(self) -> None:
        """Fold query footprints and degradations into the records."""

        by_subject: dict[str, ProvenanceRecord] = {
            record.subject: record for record in self.result.provenance
        }
        for record in self.result.provenance:
            footprint = self.audit.footprint_for(record.subject)
            record.queries = dict(footprint.queries)
            for reason in sorted(footprint.inexact_reasons):
                if reason not in record.inexact_reasons:
                    record.inexact_reasons.append(reason)
            record.exact = footprint.exact
        if self.result.degradations is not None:
            for event in self.result.degradations:
                subject = event.subject
                if subject is None:
                    continue
                if subject.startswith("kill: "):
                    # "kill: {victim-subject} by {writer}" decides the victim.
                    subject = subject[len("kill: "):].rsplit(" by ", 1)[0]
                record = by_subject.get(subject)
                if record is not None:
                    record.attach_degradation(_asdict(event))
        reported = eliminated = independent = inexact = 0
        for record in self.result.provenance:
            if record.verdict == "reported":
                reported += 1
            elif record.verdict == "eliminated":
                eliminated += 1
            else:
                independent += 1
            if not record.exact:
                inexact += 1
        _metrics.inc("omega.precision.records", len(self.result.provenance))
        _metrics.inc("omega.precision.reported", reported)
        _metrics.inc("omega.precision.eliminated", eliminated)
        _metrics.inc("omega.precision.independent", independent)
        _metrics.inc("omega.precision.inexact", inexact)

    def _emit_run_end(self) -> None:
        """Deliver run-level terminal events, deterministically ordered.

        Degradation events are sorted (the log's order depends on worker
        scheduling under pipelined services) so the event stream stays
        bit-identical across worker counts.
        """

        if self.result.degradations is not None:
            noted = sorted(
                (event.subject or "", event.kind, event.answer)
                for event in self.result.degradations
            )
            for subject, kind, answer in noted:
                self.bus.emit(
                    "degradation",
                    subject or None,
                    stage=kind,
                    detail=answer,
                )
        counts = (
            f"flow={len(self.result.flow)} anti={len(self.result.anti)} "
            f"output={len(self.result.output)}"
        )
        self.bus.emit("run.end", self.program.name, detail=counts)

    def _run_phases(self) -> None:
        writes = self.program.writes()
        reads = self.program.reads()

        if self.plan is not None:
            self._run_planned_phases(writes, reads)
            return
        with _span("analysis.phase.output"):
            self._compute_output_dependences(writes)
        with _span("analysis.phase.anti"):
            self._compute_anti_dependences(reads, writes)
        with _span("analysis.phase.flow"):
            self._compute_flow_dependences(reads, writes)
        if self.options.input_deps:
            with _span("analysis.phase.input"):
                self._compute_input_dependences(reads)

    def _run_planned_phases(
        self, writes: Sequence[Access], reads: Sequence[Access]
    ) -> None:
        """The single-pass plan-driven traversal.

        Output dependences still come first (they feed the kill and
        refinement quick tests), but the anti and flow directions of each
        read are fused into *one* task over the plan's shared state, so a
        read's backward and forward pairs reuse the same base systems and
        elimination prefixes while they are hot.  Sinks are merged back in
        read order — all anti results first, then the flow pipelines —
        reproducing the legacy phase order bit for bit.
        """

        with _span("analysis.phase.output"):
            self._compute_output_dependences(writes)
        with _span("analysis.phase.fused"):
            outcomes = self.service.map(
                lambda read: self._analyze_read_fused(read, writes), reads
            )
        for _per_read, sink in outcomes:
            self.result.anti.extend(sink.anti)
            self.result.provenance.extend(sink.anti_provenance)
        for per_read, sink in outcomes:
            self.result.pair_records.extend(sink.pair_records)
            self.result.kill_timings.extend(sink.kill_timings)
            if self.explain is not None and sink.explain is not None:
                self.explain.merge(sink.explain)
            self.result.provenance.extend(sink.provenance)
            self.result.flow.extend(per_read)
            if self.bus is not None:
                self.bus.emit_pending(sink.lifecycle)
        if self.options.input_deps:
            with _span("analysis.phase.input"):
                self._compute_input_dependences(reads)
        # The whole-program graph is the unit consumers want; emit it
        # directly while the traversal's results are final and hot.
        with _span("analysis.graph"):
            self.result.graph()

    def _analyze_read_fused(
        self, read: Access, writes: Sequence[Access]
    ) -> tuple[list[Dependence], "_ReadSink"]:
        """Both dependence directions of one read, in one plan-driven task."""

        sink = _ReadSink(
            ExplainLog() if self.explain is not None else None,
            audit=self.audit is not None,
            publish=self.bus is not None,
        )
        for dst in writes:
            if read.array != dst.array:
                continue
            with _guard.subject(f"anti: {read} -> {dst}"):
                deps = compute_dependences(
                    read,
                    dst,
                    DependenceKind.ANTI,
                    self.symbols,
                    assertions=self.options.assertions,
                    array_bounds=self.program.array_bounds,
                    plan=self.plan,
                )
            if not deps and self.audit is not None:
                sink.anti_provenance.append(
                    self._independent_record(DependenceKind.ANTI, read, dst)
                )
            for dep in deps:
                if self.options.extended and self.options.extend_all_kinds:
                    dep = refine_dependence(
                        dep, partial=self.options.partial_refine
                    ).dependence
                    if self.options.terminate:
                        dep.covers = terminates_source(dep)
                sink.anti.append(dep)
                if self.audit is not None:
                    sink.anti_provenance.append(self._dependence_record(dep))
        return self._analyze_read(read, writes, sink)

    # ------------------------------------------------------------------
    def _compute_output_dependences(self, writes: Sequence[Access]) -> None:
        for src in writes:
            for dst in writes:
                if src.array != dst.array:
                    continue
                with _guard.subject(f"output: {src} -> {dst}"):
                    deps = compute_dependences(
                        src,
                        dst,
                        DependenceKind.OUTPUT,
                        self.symbols,
                        assertions=self.options.assertions,
                        array_bounds=self.program.array_bounds,
                        plan=self.plan,
                    )
                if deps:
                    self.output_pairs.add((src, dst))
                elif self.audit is not None:
                    self.result.provenance.append(
                        self._independent_record(DependenceKind.OUTPUT, src, dst)
                    )
                for dep in deps:
                    if src is dst:
                        self._note_self_output(src, dep)
                    if self.options.extended and self.options.extend_all_kinds:
                        dep = refine_dependence(
                            dep, partial=self.options.partial_refine
                        ).dependence
                    if (
                        self.options.extended
                        and self.options.terminate
                        and src is not dst
                        and terminates_source(dep)
                    ):
                        self.terminators.setdefault(src, []).append(dep)
                    self.result.output.append(dep)
                    if self.audit is not None:
                        self.result.provenance.append(
                            self._dependence_record(dep)
                        )

    def _note_self_output(self, access: Access, dep: Dependence) -> None:
        levels = self.self_output_nonzero.setdefault(access, set())
        for vector in dep.directions:
            for index, component in enumerate(vector, start=1):
                if component.hi is None or component.hi > 0:
                    levels.add(index)
                elif component.lo is not None and component.lo > 0:
                    levels.add(index)

    def _compute_anti_dependences(
        self, reads: Sequence[Access], writes: Sequence[Access]
    ) -> None:
        for src in reads:
            for dst in writes:
                if src.array != dst.array:
                    continue
                with _guard.subject(f"anti: {src} -> {dst}"):
                    deps = compute_dependences(
                        src,
                        dst,
                        DependenceKind.ANTI,
                        self.symbols,
                        assertions=self.options.assertions,
                        array_bounds=self.program.array_bounds,
                        plan=self.plan,
                    )
                if not deps and self.audit is not None:
                    self.result.provenance.append(
                        self._independent_record(DependenceKind.ANTI, src, dst)
                    )
                for dep in deps:
                    if self.options.extended and self.options.extend_all_kinds:
                        dep = refine_dependence(
                            dep, partial=self.options.partial_refine
                        ).dependence
                        if self.options.terminate:
                            dep.covers = terminates_source(dep)
                    self.result.anti.append(dep)
                    if self.audit is not None:
                        self.result.provenance.append(
                            self._dependence_record(dep)
                        )

    def _compute_input_dependences(self, reads: Sequence[Access]) -> None:
        for src in reads:
            for dst in reads:
                if src.array != dst.array or src is dst:
                    continue
                if src.statement.position > dst.statement.position:
                    continue
                with _guard.subject(f"input: {src} -> {dst}"):
                    deps = compute_dependences(
                        src,
                        dst,
                        DependenceKind.INPUT,
                        self.symbols,
                        assertions=self.options.assertions,
                        array_bounds=self.program.array_bounds,
                        plan=self.plan,
                    )
                self.result.input.extend(deps)
                if self.audit is not None:
                    if not deps:
                        self.result.provenance.append(
                            self._independent_record(
                                DependenceKind.INPUT, src, dst
                            )
                        )
                    for dep in deps:
                        self.result.provenance.append(
                            self._dependence_record(dep)
                        )

    # ------------------------------------------------------------------
    def _compute_flow_dependences(
        self, reads: Sequence[Access], writes: Sequence[Access]
    ) -> None:
        # Each read's pipeline (pairs -> cover -> terminators -> kills) is
        # independent of every other read's, so the reads are fanned out as
        # service tasks — concurrent when the service is pipelined, inline
        # and in order when serial — and their sinks are merged back into
        # the shared result strictly in program (read) order, keeping the
        # output deterministic regardless of completion order.
        outcomes = self.service.map(
            lambda read: self._analyze_read(read, writes), reads
        )
        for per_read, sink in outcomes:
            self.result.pair_records.extend(sink.pair_records)
            self.result.kill_timings.extend(sink.kill_timings)
            if self.explain is not None and sink.explain is not None:
                self.explain.merge(sink.explain)
            self.result.provenance.extend(sink.provenance)
            self.result.flow.extend(per_read)
            if self.bus is not None:
                self.bus.emit_pending(sink.lifecycle)

    def _analyze_read(
        self, read: Access, writes: Sequence[Access], sink: "_ReadSink | None" = None
    ) -> tuple[list[Dependence], "_ReadSink"]:
        """The complete flow-dependence pipeline for one array read."""

        if sink is None:
            sink = _ReadSink(
                ExplainLog() if self.explain is not None else None,
                audit=self.audit is not None,
                publish=self.bus is not None,
            )
        tester = KillTester(
            self.symbols,
            self.output_pairs,
            array_bounds=self.program.array_bounds,
        )
        per_read: list[Dependence] = []
        for write in writes:
            if write.array != read.array:
                continue
            per_read.extend(self._analyze_pair(write, read, sink))
        if self.options.extended and self.options.cover:
            self._apply_cover_elimination(per_read, sink)
        if self.options.extended and self.options.terminate:
            self._apply_terminators(per_read, sink)
        if self.options.extended and self.options.kill:
            self._apply_kills(per_read, tester, sink)
        if sink.explain is not None:
            for dep in per_read:
                if dep.status is DependenceStatus.LIVE:
                    sink.explain.record(
                        _subject(dep),
                        "kept",
                        "no covering or killing write eliminates it",
                    )
        if sink.audit:
            # Records are assembled from the dependences' *final* state —
            # after cover/terminator/kill elimination.  Independent pairs
            # come first (in write-scan order), then every dependence of
            # this read, both deterministic at any workers setting.
            for src, dst in sink.independents:
                sink.provenance.append(
                    self._independent_record(DependenceKind.FLOW, src, dst)
                )
            for dep in per_read:
                sink.provenance.append(self._dependence_record(dep, sink))
        if sink.publish:
            # Verdict events mirror the provenance ordering: independent
            # pairs first, then this read's dependences in final state.
            for src, dst in sink.independents:
                sink.note_lifecycle(
                    "pair.verdict",
                    f"flow: {src} -> {dst}",
                    stage="omega-unsat",
                    detail="independent",
                )
            for dep in per_read:
                verdict, stage = self._verdict_of(dep)
                detail = verdict
                if dep.eliminated_by is not None:
                    detail = f"{verdict} by {dep.eliminated_by.subject()}"
                sink.note_lifecycle(
                    "pair.verdict", dep.subject(), stage=stage, detail=detail
                )
        return per_read, sink

    def _analyze_pair(
        self, write: Access, read: Access, sink: "_ReadSink"
    ) -> list[Dependence]:
        """Standard + extended analysis of one array pair, with timing."""

        _metrics.inc("analysis.pairs_analyzed")
        sink.note_lifecycle("pair.start", f"flow: {write} -> {read}")
        # Any degradation inside this pair is attributed to it by name.
        with _guard.subject(f"flow: {write} -> {read}"), _span(
            "analysis.pair", src=write, dst=read
        ) as pair_span:
            with _span("analysis.pair.standard") as standard_span:
                deps = compute_dependences(
                    write,
                    read,
                    DependenceKind.FLOW,
                    self.symbols,
                    assertions=self.options.assertions,
                    array_bounds=self.program.array_bounds,
                    plan=self.plan,
                )

            consulted_omega = False
            if self.options.extended and deps:
                refined: list[Dependence] = []
                for dep in deps:
                    if self.options.refine and self._refine_quick_allows(dep):
                        outcome = refine_dependence(
                            dep, partial=self.options.partial_refine
                        )
                        consulted_omega = consulted_omega or outcome.attempted
                        if (
                            outcome.dependence is not dep
                            and outcome.dependence.refined
                        ):
                            if sink.explain is not None:
                                self._explain_refinement(
                                    outcome.dependence, sink
                                )
                            refined_dep = outcome.dependence
                            before = ", ".join(
                                str(v) for v in refined_dep.unrefined_directions
                            )
                            sink.note_event(
                                _subject(refined_dep),
                                "refine",
                                f"({before}) -> "
                                f"({refined_dep.direction_text()})",
                            )
                        dep = outcome.dependence
                    refined.append(dep)
                deps = refined
                if self.options.cover:
                    for dep in deps:
                        if cover_quick_reject(dep):
                            continue
                        consulted_omega = True
                        dep.covers = covers_destination(
                            dep, use_quick_test=False
                        )
                        if dep.covers:
                            sink.note_event(
                                _subject(dep), "cover", "covers its destination"
                            )
                        if dep.covers and sink.explain is not None:
                            sink.explain.record(
                                _subject(dep),
                                "covers",
                                "every element the destination accesses was "
                                "previously written by this source",
                                used_omega=True,
                            )

        if not deps and (sink.audit or sink.publish):
            sink.independents.append((write, read))
        if deps:
            _metrics.inc("analysis.dependences_found", len(deps))
        if pair_span.duration:
            _metrics.observe("analysis.pair_seconds", pair_span.duration)
        if self.options.record_timings:
            if not consulted_omega:
                category = PairCategory.FAST
            elif len(deps) > 1:
                category = PairCategory.SPLIT
            else:
                category = PairCategory.GENERAL
            sink.pair_records.append(
                PairRecord(
                    write,
                    read,
                    standard_span.duration,
                    pair_span.duration,
                    category,
                    len(deps),
                )
            )
        return deps

    def _explain_refinement(self, dep: Dependence, sink: "_ReadSink") -> None:
        before = ", ".join(str(v) for v in dep.unrefined_directions)
        sink.explain.record(
            _subject(dep),
            "refined",
            f"distance narrowed from ({before}) to ({dep.direction_text()}): "
            "every destination iteration still receives the value from the "
            "refined source",
            used_omega=True,
        )

    def _refine_quick_allows(self, dep: Dependence) -> bool:
        """Quick test: refinement in some loop needs a self-output
        dependence of the source with a non-zero distance in that loop."""

        if not dep.deltas:
            return False
        levels = self.self_output_nonzero.get(dep.src, set())
        if not levels:
            return False
        # Some level must be non-exact (refinable) and self-overwriting.
        for vector in dep.directions:
            for index, component in enumerate(vector, start=1):
                if not component.is_exact and index in levels:
                    return True
        return False

    # ------------------------------------------------------------------
    def _apply_cover_elimination(
        self, deps: list[Dependence], sink: "_ReadSink"
    ) -> None:
        """Use covering dependences to rule out writes that completely
        precede the coverer (no kill test needed)."""

        covers = [d for d in deps if d.covers]
        for cover in covers:
            for dep in deps:
                if dep is cover or dep.status is not DependenceStatus.LIVE:
                    continue
                if self._completely_before(dep.src, cover.src):
                    dep.status = DependenceStatus.COVERED
                    dep.eliminated_by = cover
                    _metrics.inc("analysis.deps_covered")
                    sink.note_event(
                        _subject(dep),
                        "cover",
                        f"eliminated by {_subject(cover)}",
                    )
                    if sink.explain is not None:
                        sink.explain.record(
                            _subject(dep),
                            "covered",
                            "its source runs entirely before a covering "
                            "write of the same destination",
                            by=_subject(cover),
                        )

    @staticmethod
    def _completely_before(a: Access, b: Access) -> bool:
        """Structurally: every instance of ``a`` runs before any of ``b``."""

        return (
            common_depth(a, b) == 0
            and a.statement.position < b.statement.position
        )

    def _apply_terminators(
        self, deps: list[Dependence], sink: "_ReadSink"
    ) -> None:
        """Terminating dependences (Section 4.3): a write B that overwrites
        everything A accessed kills any dependence from A to accesses that
        run entirely after B."""

        for dep in deps:
            if dep.status is not DependenceStatus.LIVE:
                continue
            for terminator in self.terminators.get(dep.src, ()):
                if self._completely_before(terminator.dst, dep.dst):
                    dep.status = DependenceStatus.KILLED
                    dep.eliminated_by = terminator
                    _metrics.inc("analysis.deps_killed")
                    sink.note_event(
                        _subject(dep),
                        "terminate",
                        f"terminated by {_subject(terminator)}",
                    )
                    if sink.explain is not None:
                        sink.explain.record(
                            _subject(dep),
                            "terminated",
                            "a terminating write overwrites everything the "
                            "source wrote before the destination runs",
                            by=_subject(terminator),
                        )
                    break

    def _apply_kills(
        self, deps: list[Dependence], tester: KillTester, sink: "_ReadSink"
    ) -> None:
        for victim in deps:
            if victim.status is not DependenceStatus.LIVE:
                continue
            for killer in deps:
                if killer is victim:
                    continue
                if killer.status is not DependenceStatus.LIVE:
                    continue
                with _guard.subject(
                    f"kill: {_subject(victim)} by {killer.src}"
                ):
                    killed = tester.kills(victim, killer)
                record = tester.records[-1]
                if self.options.record_timings:
                    sink.kill_timings.append(
                        KillTiming(
                            victim.src,
                            killer.src,
                            victim.dst,
                            record.elapsed,
                            self._pair_time(sink, victim.src, victim.dst),
                            record.used_omega,
                            killed,
                        )
                    )
                if killed:
                    victim.status = DependenceStatus.KILLED
                    victim.eliminated_by = killer
                    _metrics.inc("analysis.deps_killed")
                    sink.kill_used[_subject(victim)] = record.used_omega
                    sink.note_event(
                        _subject(victim),
                        "kill",
                        ("general omega test" if record.used_omega else "quick test")
                        + f" by {_subject(killer)}",
                    )
                    if sink.explain is not None:
                        sink.explain.record(
                            _subject(victim),
                            "killed",
                            "every element it carries is overwritten by an "
                            "intervening write before the destination reads "
                            "it",
                            by=_subject(killer),
                            used_omega=record.used_omega,
                        )
                    break

    @staticmethod
    def _pair_time(sink: "_ReadSink", src: Access, dst: Access) -> float:
        for record in sink.pair_records:
            if record.src is src and record.dst is dst:
                return record.extended_time
        return 0.0
