"""Array dependence analysis with the Omega test's extended capabilities."""

from .applications import (
    ParallelizationReport,
    carried_dependences,
    parallelizable_loops,
    privatizable_arrays,
)
from .cover import cover_quick_reject, covers_destination, terminates_source
from .dependences import (
    Dependence,
    DependenceKind,
    DependenceStatus,
    compute_dependences,
)
from .engine import AnalysisOptions, Analyzer, analyze
from .graph import (
    dependence_graph,
    distribution_order,
    recurrences,
    vectorizable_statements,
)
from .kills import KillTester, kill_quick_reject
from .plan import QueryPlan, default_planner_enabled
from .problem import (
    PairProblem,
    SymbolTable,
    build_instance,
    build_pair_problem,
    common_depth,
    syntactically_forward,
)
from .refine import RefinementOutcome, refine_dependence
from .results import AnalysisResult, KillTiming, PairCategory, PairRecord
from .session import SymbolicSession, parse_assertion
from .vectors import (
    MINUS,
    PLUS,
    STAR,
    ZERO,
    ZERO_PLUS,
    DirComponent,
    DirectionVector,
    RestraintVector,
    component_bounds,
    direction_vectors,
    restraint_vectors,
)

__all__ = [
    "carried_dependences",
    "parallelizable_loops",
    "privatizable_arrays",
    "ParallelizationReport",
    "SymbolicSession",
    "parse_assertion",
    "dependence_graph",
    "recurrences",
    "vectorizable_statements",
    "distribution_order",
    "analyze",
    "Analyzer",
    "AnalysisOptions",
    "AnalysisResult",
    "PairRecord",
    "PairCategory",
    "KillTiming",
    "Dependence",
    "DependenceKind",
    "DependenceStatus",
    "compute_dependences",
    "refine_dependence",
    "RefinementOutcome",
    "covers_destination",
    "terminates_source",
    "cover_quick_reject",
    "KillTester",
    "kill_quick_reject",
    "QueryPlan",
    "default_planner_enabled",
    "PairProblem",
    "SymbolTable",
    "build_pair_problem",
    "build_instance",
    "common_depth",
    "syntactically_forward",
    "DirComponent",
    "DirectionVector",
    "RestraintVector",
    "direction_vectors",
    "restraint_vectors",
    "component_bounds",
    "PLUS",
    "MINUS",
    "ZERO",
    "ZERO_PLUS",
    "STAR",
]
