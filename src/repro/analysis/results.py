"""Result containers for a full program analysis."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from ..guard import DegradationLog
from ..ir.ast import Access, Program
from ..obs.audit import AuditLog, ProvenanceRecord
from ..obs.explain import ExplainLog
from ..obs.trace import Tracer
from .dependences import Dependence, DependenceKind, DependenceStatus

__all__ = ["PairCategory", "PairRecord", "KillTiming", "AnalysisResult"]


class PairCategory(enum.Enum):
    """Figure 6's three pair populations."""

    #: Quick tests showed refinement and coverage impossible; the extended
    #: machinery never consulted the Omega test.
    FAST = "fast"
    #: General refinement/cover test ran on a single dependence vector.
    GENERAL = "general"
    #: The dependence was split into several dependence vectors.
    SPLIT = "split"


@dataclass
class PairRecord:
    """Timing and classification for one write/read array pair."""

    src: Access
    dst: Access
    standard_time: float
    extended_time: float
    category: PairCategory
    dependence_count: int

    @property
    def ratio(self) -> float:
        if self.standard_time <= 0:
            return float("inf")
        return self.extended_time / self.standard_time


@dataclass
class KillTiming:
    """Timing for one potential kill (one pair of dependences to a read)."""

    victim_src: Access
    killer_src: Access
    dst: Access
    kill_time: float
    generation_time: float
    used_omega: bool
    killed: bool


@dataclass
class AnalysisResult:
    """Everything the analysis produced for one program."""

    program: Program
    flow: list[Dependence] = field(default_factory=list)
    anti: list[Dependence] = field(default_factory=list)
    output: list[Dependence] = field(default_factory=list)
    input: list[Dependence] = field(default_factory=list)
    pair_records: list[PairRecord] = field(default_factory=list)
    kill_timings: list[KillTiming] = field(default_factory=list)
    #: The decision trail, when ``AnalysisOptions(explain=True)``.
    explain: ExplainLog | None = None
    #: One :class:`repro.obs.ProvenanceRecord` per dependence pair the
    #: analysis decided (reported, eliminated or proved independent), when
    #: ``AnalysisOptions(audit=True)``; bit-identical across ``workers``
    #: and cache settings.
    provenance: list[ProvenanceRecord] = field(default_factory=list)
    #: The raw per-subject query footprints behind ``provenance``.
    audit: AuditLog | None = None
    #: The engine's private tracer, when it had to create one for timing
    #: (``record_timings=True`` with no caller-installed tracer).
    trace: Tracer | None = None
    #: Snapshot of the solver cache counters for this analysis (None when
    #: the cache was disabled).  See :class:`repro.omega.SolverCache`.
    cache_stats: dict | None = None
    #: Every conservative substitution made under a resource budget
    #: (``AnalysisOptions(deadline_ms=..., budget=...)``), with per-query
    #: provenance; None when the run was ungoverned.  A non-empty log
    #: means the reported dependences are a sound *superset* of the exact
    #: answer.
    degradations: DegradationLog | None = None
    #: Snapshot of the execution backend's counters for this analysis
    #: (:meth:`repro.solver.backends.ExecutionBackend.info`).  Surfaces
    #: the process backend's broken-pool latch and inline-fallback count
    #: — a run that silently fell back to inline execution says so here,
    #: in ``--stats`` and in the run ledger.
    backend_stats: dict | None = None
    #: Memoized whole-program dependence graph (see :meth:`graph`).
    _graph: object | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    def graph(self, **kwargs):
        """The whole-program dependence graph for this result.

        Default-argument calls are memoized — the planner-driven engine
        emits the graph directly at the end of its single-pass traversal,
        so consumers get it for free; explicit ``kwargs`` always rebuild.
        """

        from .graph import dependence_graph

        if kwargs:
            return dependence_graph(self, **kwargs)
        if self._graph is None:
            self._graph = dependence_graph(self)
        return self._graph

    # ------------------------------------------------------------------
    def degraded(self) -> bool:
        """Did any query degrade to its conservative answer?"""

        return self.degradations is not None and len(self.degradations) > 0

    def degraded_subjects(self) -> set[str | None]:
        """The dependences (subject tags) affected by degradation."""

        if self.degradations is None:
            return set()
        return self.degradations.subjects()

    # ------------------------------------------------------------------
    def provenance_for(self, subject: str) -> ProvenanceRecord | None:
        """The provenance record for one subject tag, if audited."""

        for record in self.provenance:
            if record.subject == subject:
                return record
        return None

    def inexact_records(self) -> list[ProvenanceRecord]:
        """Audited records whose answer was not exact."""

        return [r for r in self.provenance if not r.exact]

    # ------------------------------------------------------------------
    def live_flow(self) -> list[Dependence]:
        return [d for d in self.flow if d.status is DependenceStatus.LIVE]

    def dead_flow(self) -> list[Dependence]:
        return [d for d in self.flow if d.status is not DependenceStatus.LIVE]

    def all_dependences(self) -> list[Dependence]:
        return (
            list(self.flow)
            + list(self.anti)
            + list(self.output)
            + list(self.input)
        )

    def flow_between(self, src_label: str, dst_label: str) -> list[Dependence]:
        """Flow dependences between two statement labels (any status)."""

        return [
            d
            for d in self.flow
            if d.src.statement.label == src_label
            and d.dst.statement.label == dst_label
        ]

    def counts(self) -> dict[str, int]:
        return {
            "flow_live": len(self.live_flow()),
            "flow_dead": len(self.dead_flow()),
            "anti": len(self.anti),
            "output": len(self.output),
            "input": len(self.input),
            "pairs": len(self.pair_records),
        }

    def category_counts(self) -> dict[PairCategory, int]:
        found: dict[PairCategory, int] = {c: 0 for c in PairCategory}
        for record in self.pair_records:
            found[record.category] += 1
        return found
