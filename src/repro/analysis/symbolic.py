"""Symbolic dependence analysis (Section 5 of the paper).

Three capabilities:

* **Dependence conditions** — project the dependence problem onto the
  symbolic constants to find under which conditions a dependence exists;
  use *gists* to report only what is new relative to what is already known
  (Example 7: the outer-loop-carried dependence exists only when
  ``1 <= x <= 50`` given ``50 <= n <= 100``).

* **User queries** — when index arrays or non-linear terms appear, the
  residual condition mentions uninterpreted values; we render the paper's
  dialogue ("Is it the case that for all a & b such that 1 <= a < b <= n,
  the following never happens?  Q[a] = Q[b]").

* **Array properties** — instead of a yes/no answer, the user may state
  that an array is injective, strictly increasing, a permutation, or
  value-bounded; these instantiate linear constraints per occurrence pair
  (an Ackermann-style case split) and dependence existence is re-decided.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..ir.ast import Access
from ..omega import Constraint, LinearExpr, Problem, Variable
from ..solver import gist, gist_of_projection, is_satisfiable, project
from .dependences import Dependence, DependenceKind, compute_dependences
from .problem import PairProblem, SymbolTable, UTermOccurrence, build_pair_problem
from .vectors import RestraintVector, restraint_vectors

__all__ = [
    "SymbolicCondition",
    "dependence_conditions",
    "DependenceQuery",
    "generate_query",
    "ArrayProperty",
    "PropertyRegistry",
    "property_case_splits",
    "satisfiable_with_properties",
    "symbolic_dependence_exists",
    "format_constraint",
    "format_problem",
]


# ---------------------------------------------------------------------------
# Dependence conditions (Example 7)
# ---------------------------------------------------------------------------


@dataclass
class SymbolicCondition:
    """The conditions under which one dependence (restraint vector) exists."""

    restraint: RestraintVector
    #: New information required for the dependence, given the context.
    condition: Problem
    #: What was already known (the projection of p).
    context: Problem
    #: False when a projection lost exactness and the condition is only a
    #: conservative approximation.
    exact: bool = True

    def __str__(self) -> str:
        return f"{self.restraint}: {format_problem(self.condition)}"


def _single_piece(problem: Problem, keep: Sequence[Variable]) -> tuple[Problem, bool]:
    projection = project(problem, keep)
    if projection.exact_union and len(projection.pieces) == 1:
        return projection.pieces[0], True
    if projection.exact_union and not projection.pieces:
        false = Problem(name="FALSE")
        false.add_ge(-1)
        return false, True
    return projection.real, False


def dependence_conditions(
    src: Access,
    dst: Access,
    kind: DependenceKind = DependenceKind.FLOW,
    symbols: SymbolTable | None = None,
    *,
    assertions: Iterable[Constraint] = (),
    array_bounds=None,
    keep_syms: Sequence[Variable] | None = None,
) -> list[SymbolicCondition]:
    """Conditions on symbolic constants for each restraint vector.

    Implements Figure 5: ``p`` is loop bounds + restraint + assertions (what
    must hold for a dependence carried there to be interesting); ``q`` adds
    subscript equality (the dependence exists); the answer is
    ``gist pi_keep(p and q) given pi_keep(p)``.
    """

    symbols = symbols or SymbolTable()
    pair = build_pair_problem(
        src, dst, symbols, assertions=assertions, array_bounds=array_bounds
    )
    base = pair.full()
    restraints = restraint_vectors(base, pair.delta_vars, pair.forward)
    keep = list(keep_syms) if keep_syms is not None else pair.sym_vars()

    conditions: list[SymbolicCondition] = []
    for restraint in restraints:
        p = Problem(
            list(pair.domain.constraints)
            + restraint.constraints(pair.delta_vars),
            name="p",
        )
        # Section 3.3.2: combined red/black projection-and-gist (with the
        # independent-projection fallback when an elimination is inexact).
        condition = gist_of_projection(p, pair.coupling, keep)
        p_proj, p_exact = _single_piece(p, keep)
        conditions.append(
            SymbolicCondition(restraint, condition, p_proj, exact=p_exact)
        )
    return conditions


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _split_expr(expr: LinearExpr, rename) -> tuple[str, str]:
    """Split an expression into (positive side, negative side) strings."""

    pos: list[str] = []
    neg: list[str] = []
    for var, coeff in sorted(
        expr.terms.items(), key=lambda item: (item[0].kind, item[0].name)
    ):
        name = rename(var)
        magnitude = abs(coeff)
        text = name if magnitude == 1 else f"{magnitude}*{name}"
        (pos if coeff > 0 else neg).append(text)
    constant = expr.constant
    if constant > 0:
        pos.append(str(constant))
    elif constant < 0:
        neg.append(str(-constant))
    return (" + ".join(pos) or "0", " + ".join(neg) or "0")


def format_constraint(constraint: Constraint, rename=None) -> str:
    """Human-oriented rendering: ``a.x + c >= 0`` as ``lhs >= rhs``."""

    rename = rename or (lambda v: v.name)
    pos, neg = _split_expr(constraint.expr, rename)
    op = "=" if constraint.is_equality else ">="
    return f"{pos} {op} {neg}"


def format_problem(problem: Problem, rename=None) -> str:
    """Render a conjunction for humans ("x >= 1 and 50 >= x")."""

    if problem.is_trivially_true():
        return "TRUE"
    return " and ".join(
        format_constraint(c, rename) for c in problem.sorted_constraints()
    )


# ---------------------------------------------------------------------------
# Queries about uninterpreted terms (Example 8)
# ---------------------------------------------------------------------------


@dataclass
class DependenceQuery:
    """A question to put to the user, in the paper's dialogue style."""

    src: Access
    dst: Access
    kind: DependenceKind
    restraint: RestraintVector
    #: Residual condition over uninterpreted values (and symbols).
    condition: Problem
    #: Known constraints over the argument variables and symbols.
    context: Problem
    #: Friendly names for occurrence variables.
    renaming: dict[Variable, str] = field(default_factory=dict)
    #: The quantified argument names shown in the "for all" clause.
    arg_names: tuple[str, ...] = ()

    def _rename(self, var: Variable) -> str:
        return self.renaming.get(var, var.name)

    @property
    def is_trivial(self) -> bool:
        """True when the residual condition does not involve the unknown
        (uninterpreted) values — there is nothing to ask the user about."""

        occurrence_vars = set(self.renaming)
        return not any(
            v in occurrence_vars
            for constraint in self.condition.constraints
            for v in constraint.variables()
        )

    def render(self) -> str:
        context_text = format_problem(self.context, self._rename)
        condition_text = format_problem(self.condition, self._rename)
        quantified = " & ".join(self.arg_names) or "values"
        return (
            f"Is it the case that for all {quantified} such that\n"
            f"  {context_text},\n"
            "the following never happens?\n\n"
            f"  {condition_text}\n"
        )

    def __str__(self) -> str:
        return self.render()


_ARG_LETTERS = "abcdefgh"


def generate_query(
    src: Access,
    dst: Access,
    kind: DependenceKind = DependenceKind.FLOW,
    symbols: SymbolTable | None = None,
    *,
    assertions: Iterable[Constraint] = (),
    array_bounds=None,
) -> list[DependenceQuery]:
    """Generate the user queries for a pair with uninterpreted terms.

    One query per restraint vector whose residual condition involves the
    unknown values.  Queries with a trivially-true condition mean the
    dependence exists regardless; an unsatisfiable residual means no
    dependence.
    """

    symbols = symbols or SymbolTable()
    pair = build_pair_problem(
        src, dst, symbols, assertions=assertions, array_bounds=array_bounds
    )
    occurrences = pair.occurrences()
    base = pair.full()
    restraints = restraint_vectors(base, pair.delta_vars, pair.forward)

    # Friendly names: argument variables become a, b, c ... ; value
    # variables render as Q[a] / a*b / k(a).
    renaming: dict[Variable, str] = {}
    letters = iter(_ARG_LETTERS)
    for occ in occurrences:
        for arg_var in occ.arg_vars:
            if arg_var not in renaming:
                renaming[arg_var] = next(letters, arg_var.name)
    for occ in occurrences:
        arg_names = [renaming.get(a, a.name) for a in occ.arg_vars]
        if occ.term.kind == "product":
            renaming[occ.value_var] = "*".join(arg_names)
        elif occ.term.kind == "scalar":
            renaming[occ.value_var] = (
                f"{occ.term.name}({', '.join(arg_names)})"
                if arg_names
                else occ.term.name
            )
        else:
            renaming[occ.value_var] = f"{occ.term.name}[{', '.join(arg_names)}]"

    value_vars = [occ.value_var for occ in occurrences]
    arg_vars = [a for occ in occurrences for a in occ.arg_vars]
    plain_syms = [
        v for v in pair.sym_vars() if v not in set(value_vars) | set(arg_vars)
    ]

    queries: list[DependenceQuery] = []
    for restraint in restraints:
        p = Problem(
            list(pair.domain.constraints)
            + restraint.constraints(pair.delta_vars),
            name="p",
        )
        pq = p.conjoin(pair.coupling)
        keep = value_vars + arg_vars + plain_syms
        p_proj, _ = _single_piece(p, keep)
        pq_proj, _ = _single_piece(pq, keep)
        condition = gist(pq_proj, p_proj)
        context_keep = arg_vars + plain_syms
        context, _ = _single_piece(p, context_keep)
        arg_names = tuple(
            sorted({renaming[a] for a in arg_vars if a in renaming})
        )
        queries.append(
            DependenceQuery(
                src, dst, kind, restraint, condition, context, renaming, arg_names
            )
        )
    return queries


# ---------------------------------------------------------------------------
# Array properties (Ackermann-style case splits)
# ---------------------------------------------------------------------------


class ArrayProperty(enum.Enum):
    """User-assertable properties of index arrays (Section 5)."""

    INJECTIVE = "injective"
    STRICTLY_INCREASING = "strictly_increasing"
    NONDECREASING = "nondecreasing"
    PERMUTATION = "permutation"


class PropertyRegistry:
    """User-asserted properties of index arrays / unknown functions."""

    def __init__(self) -> None:
        self._properties: dict[str, set[ArrayProperty]] = {}
        self._value_bounds: dict[str, tuple[int | Variable, int | Variable]] = {}

    def declare(self, array: str, *properties: ArrayProperty) -> "PropertyRegistry":
        self._properties.setdefault(array, set()).update(properties)
        return self

    def bound_values(self, array: str, lo, hi) -> "PropertyRegistry":
        """Assert ``lo <= array[...] <= hi`` for every element."""

        self._value_bounds[array] = (lo, hi)
        return self

    def properties(self, array: str) -> set[ArrayProperty]:
        found = set(self._properties.get(array, set()))
        if ArrayProperty.PERMUTATION in found:
            found.add(ArrayProperty.INJECTIVE)
        return found

    def value_bounds(self, array: str):
        return self._value_bounds.get(array)


def _pair_branches(
    o1: UTermOccurrence,
    o2: UTermOccurrence,
    registry: PropertyRegistry,
) -> list[list[Constraint]]:
    """Case-split constraints for one occurrence pair of the same term."""

    from ..omega import eq as oeq, le as ole

    v1, v2 = o1.value_var, o2.value_var
    props = registry.properties(o1.term.name)

    if len(o1.arg_vars) != 1 or len(o2.arg_vars) != 1:
        # Multi-argument terms (products, multi-dim index arrays): only
        # functional consistency — all arguments equal forces equal values;
        # otherwise some argument differs in one of two directions.
        branches: list[list[Constraint]] = []
        equal = [oeq(a1, a2) for a1, a2 in zip(o1.arg_vars, o2.arg_vars)]
        branches.append(equal + [oeq(v1, v2)])
        for index in range(len(o1.arg_vars)):
            a1, a2 = o1.arg_vars[index], o2.arg_vars[index]
            branches.append([ole(a1 + 1, a2)])
            branches.append([ole(a2 + 1, a1)])
        return branches

    s1, s2 = o1.arg_vars[0], o2.arg_vars[0]
    lt: list[Constraint] = [ole(s1 + 1, s2)]
    eq_branch: list[Constraint] = [oeq(s1, s2), oeq(v1, v2)]
    gt: list[Constraint] = [ole(s2 + 1, s1)]

    if ArrayProperty.STRICTLY_INCREASING in props:
        return [
            lt + [ole(v1 + 1, v2)],
            eq_branch,
            gt + [ole(v2 + 1, v1)],
        ]
    if ArrayProperty.NONDECREASING in props:
        return [
            lt + [ole(v1, v2)],
            eq_branch,
            gt + [ole(v2, v1)],
        ]
    if ArrayProperty.INJECTIVE in props:
        return [
            lt + [ole(v1 + 1, v2)],
            lt + [ole(v2 + 1, v1)],
            eq_branch,
            gt + [ole(v1 + 1, v2)],
            gt + [ole(v2 + 1, v1)],
        ]
    return [lt, eq_branch, gt]


def property_case_splits(
    occurrences: Sequence[UTermOccurrence],
    registry: PropertyRegistry,
    symbols: SymbolTable | None = None,
) -> list[list[Constraint]]:
    """All combined case splits (one list of constraints per branch).

    Also instantiates unconditional value bounds (permutation arrays get
    element bounds from :meth:`PropertyRegistry.bound_values`).
    """

    from ..omega import le as ole

    unconditional: list[Constraint] = []
    for occ in occurrences:
        bounds = registry.value_bounds(occ.term.name)
        if bounds is not None:
            lo, hi = bounds
            lo_expr = LinearExpr({symbols.sym(lo): 1}) if isinstance(lo, str) else lo
            hi_expr = LinearExpr({symbols.sym(hi): 1}) if isinstance(hi, str) else hi
            unconditional.append(ole(lo_expr, occ.value_var))
            unconditional.append(ole(occ.value_var, hi_expr))

    grouped: dict[tuple, list[UTermOccurrence]] = {}
    for occ in occurrences:
        grouped.setdefault(occ.key, []).append(occ)

    pair_splits: list[list[list[Constraint]]] = []
    for group in grouped.values():
        for o1, o2 in itertools.combinations(group, 2):
            pair_splits.append(_pair_branches(o1, o2, registry))

    if not pair_splits:
        return [unconditional]
    branches: list[list[Constraint]] = []
    for combo in itertools.product(*pair_splits):
        merged = list(unconditional)
        for constraints in combo:
            merged.extend(constraints)
        branches.append(merged)
    return branches


def satisfiable_with_properties(
    problem: Problem,
    occurrences: Sequence[UTermOccurrence],
    registry: PropertyRegistry,
    symbols: SymbolTable | None = None,
) -> bool:
    """Is the problem satisfiable under the declared array properties?"""

    symbols = symbols or SymbolTable()
    for branch in property_case_splits(occurrences, registry, symbols):
        trial = Problem(list(problem.constraints) + branch)
        if is_satisfiable(trial):
            return True
    return False


def symbolic_dependence_exists(
    src: Access,
    dst: Access,
    kind: DependenceKind = DependenceKind.FLOW,
    registry: PropertyRegistry | None = None,
    symbols: SymbolTable | None = None,
    *,
    assertions: Iterable[Constraint] = (),
    array_bounds=None,
) -> bool:
    """Decide dependence existence under uninterpreted-term properties.

    Without a registry this is the conservative default (unknown values are
    unconstrained, so a dependence is assumed whenever the affine parts
    allow it); with properties the Ackermann case split can rule it out —
    e.g. an output dependence through a permutation array is impossible.
    """

    registry = registry or PropertyRegistry()
    symbols = symbols or SymbolTable()
    pair = build_pair_problem(
        src, dst, symbols, assertions=assertions, array_bounds=array_bounds
    )
    base = pair.full()
    restraints = restraint_vectors(base, pair.delta_vars, pair.forward)
    occurrences = pair.occurrences()
    for restraint in restraints:
        constrained = Problem(
            list(base.constraints) + restraint.constraints(pair.delta_vars)
        )
        if satisfiable_with_properties(constrained, occurrences, registry, symbols):
            return True
    return False
