"""Refinement of dependence distances (Section 4.4).

A dependence from write A to access B refines to distance set D when every
iteration of B receiving the dependence also receives it from a source
within D.  Candidate Ds fix the distance loop-by-loop from the outside in
to the *minimum* feasible value — which makes the refined dependence carry
the most recent writes, enabling the simplified test::

    forall k, Sym:
      (exists i . i in [A] and A(i) << B(k) and A(i) sub= B(k))
        =>  (exists j . j in [A] and A(j) <<_D B(k) and A(j) sub= B(k))

Both sides are projections onto (k, Sym); the implication is checked with
gists / union implications, handling splintered projections.

As a documented extension (``partial=True``) we also try small *ranges*
(e.g. ``0:1``) when an exact fix fails; the paper notes its generator "will
not automatically find the partial refinement in Example 5" — ours does.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..guard import budget as _guard
from ..obs.audit import note_conservative as _note_conservative
from ..obs.instrument import metrics as _metrics
from ..obs.instrument import span as _span
from ..omega import Problem, Variable
from ..omega.errors import BudgetExhausted, OmegaComplexityError
from ..solver import implies_union, is_satisfiable, project
from .dependences import Dependence
from .vectors import STAR, DirComponent, DirectionVector, component_bounds, direction_vectors

__all__ = ["refine_dependence", "RefinementOutcome"]

_PARTIAL_WIDTH = 2  # how far above the minimum a range refinement may reach


class RefinementOutcome:
    """Result wrapper: the (possibly) refined dependence plus telemetry."""

    def __init__(self, dependence: Dependence, attempted: bool, levels_fixed: int):
        self.dependence = dependence
        self.attempted = attempted
        self.levels_fixed = levels_fixed


def _lhs_keep(dep: Dependence) -> list[Variable]:
    keep = list(dep.pair.dst_ctx.loop_vars)
    keep.extend(dep.pair.sym_vars())
    return keep


def _implication_holds(
    lhs_pieces: list[Problem], rhs_pieces: list[Problem]
) -> bool:
    if not rhs_pieces:
        return not lhs_pieces
    try:
        return all(implies_union(piece, rhs_pieces) for piece in lhs_pieces)
    except BudgetExhausted:
        # Only reachable under the strict ("raise") policy — the solver
        # service degrades this to False itself otherwise.
        raise
    except OmegaComplexityError:
        return False  # conservative: do not refine


def refine_dependence(
    dep: Dependence, *, partial: bool = False
) -> RefinementOutcome:
    """Attempt to refine a dependence; returns the refined dependence.

    The input dependence is not mutated; when refinement succeeds a new
    :class:`Dependence` is returned with ``refined=True`` and the original
    direction vectors preserved in ``unrefined_directions``.
    """

    with _span("analysis.refine", src=dep.src, dst=dep.dst) as sp:
        outcome = _refine(dep, partial)
    if sp.duration:
        _metrics.observe("analysis.refine_seconds", sp.duration)
    if outcome.attempted:
        _metrics.inc("analysis.refinements_attempted")
    if outcome.dependence is not dep and outcome.dependence.refined:
        _metrics.inc("analysis.refinements_applied")
    return outcome


def _refine(dep: Dependence, partial: bool) -> RefinementOutcome:
    deltas = dep.deltas
    if not deltas:
        return RefinementOutcome(dep, False, 0)

    keep = _lhs_keep(dep)
    lhs_projection = project(dep.problem, keep)
    if not lhs_projection.exact_union:
        # Cannot prove the simplified-test implication from an inexact
        # union: leave the dependence unrefined, soundly.
        _note_conservative(
            _guard.current_subject(), "refine-inexact-projection"
        )
        return RefinementOutcome(dep, True, 0)
    lhs_pieces = lhs_projection.pieces

    fixed: list[DirComponent] = []
    narrowed = False
    for level, delta in enumerate(deltas):
        context = Problem(list(dep.problem.constraints), name=dep.problem.name)
        for component, dv in zip(fixed, deltas):
            context.extend(component.constraints(dv))
        bounds = component_bounds(context, delta)
        if bounds.lo is None:
            break
        if bounds.is_exact:
            # Already pinned; nothing to test at this level.
            fixed.append(bounds)
            continue
        candidates = [DirComponent(bounds.lo, bounds.lo)]
        if partial:
            hi_limit = bounds.hi if bounds.hi is not None else bounds.lo + _PARTIAL_WIDTH
            for hi in range(bounds.lo + 1, min(bounds.lo + _PARTIAL_WIDTH, hi_limit) + 1):
                candidates.append(DirComponent(bounds.lo, hi))
        accepted: DirComponent | None = None
        for candidate in candidates:
            trial = Problem(list(context.constraints), name=context.name)
            trial.extend(candidate.constraints(delta))
            if not is_satisfiable(trial):
                continue
            rhs_projection = project(trial, keep)
            if _implication_holds(lhs_pieces, rhs_projection.pieces):
                accepted = candidate
                break
        if accepted is None:
            break
        fixed.append(accepted)
        if (accepted.lo, accepted.hi) != (bounds.lo, bounds.hi):
            narrowed = True

    if not fixed or not narrowed:
        return RefinementOutcome(dep, True, len(fixed))

    refined_problem = Problem(list(dep.problem.constraints), name=dep.problem.name)
    for component, delta in zip(fixed, deltas):
        refined_problem.extend(component.constraints(delta))
    new_directions = direction_vectors(refined_problem, deltas)
    really_refined = new_directions != dep.directions
    refined = Dependence(
        dep.kind,
        dep.src,
        dep.dst,
        dep.pair,
        dep.restraint,
        refined_problem,
        new_directions,
        refined=really_refined,
        unrefined_directions=list(dep.directions),
    )
    if not really_refined:
        return RefinementOutcome(dep, True, len(fixed))
    return RefinementOutcome(refined, True, len(fixed))
