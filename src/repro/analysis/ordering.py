"""Execution-order constraints between statement instances.

``A(i) << B(j)`` is a *disjunction* over carrier levels (prefix of common
loop variables equal, then strictly earlier at one level; or all equal and
A textually before B).  The Section 4 tests need conjunctions, so callers
enumerate the cases this module generates.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.ast import Access
from ..omega import Constraint, LinearExpr, Problem, Variable, eq, le
from .problem import InstanceContext, common_depth, syntactically_forward

__all__ = ["execution_order_cases", "order_case_constraints"]


def order_case_constraints(
    a_vars: Sequence[Variable],
    b_vars: Sequence[Variable],
    depth: int,
    carrier: int,
) -> list[Constraint]:
    """Constraints for "A before B, carried at ``carrier``".

    ``carrier`` in 1..depth pins the first ``carrier - 1`` common loop
    variables equal and requires strict increase at level ``carrier``;
    ``carrier == 0`` means the loop-independent case: all common loop
    variables equal (textual order must be checked separately).
    """

    constraints: list[Constraint] = []
    if carrier == 0:
        for level in range(depth):
            constraints.append(eq(a_vars[level], b_vars[level]))
        return constraints
    for level in range(carrier - 1):
        constraints.append(eq(a_vars[level], b_vars[level]))
    constraints.append(le(a_vars[carrier - 1] + 1, b_vars[carrier - 1]))
    return constraints


def execution_order_cases(
    a_ctx: InstanceContext, b_ctx: InstanceContext
) -> list[list[Constraint]]:
    """All conjunctive cases of ``A(i) << B(j)`` for two instances.

    One case per carrier level, plus the loop-independent case when A is
    syntactically before B.
    """

    depth = common_depth(a_ctx.access, b_ctx.access)
    a_vars = a_ctx.loop_vars
    b_vars = b_ctx.loop_vars
    cases: list[list[Constraint]] = []
    for carrier in range(1, depth + 1):
        cases.append(order_case_constraints(a_vars, b_vars, depth, carrier))
    if syntactically_forward(a_ctx.access, b_ctx.access):
        cases.append(order_case_constraints(a_vars, b_vars, depth, 0))
    return cases
