"""An interactive-style analysis session (the paper's user dialogue).

Section 5 envisions a compiler that "generate[s] a useful dialog with the
user about which relationships hold".  :class:`SymbolicSession` makes that
dialogue scriptable:

* accumulate assertions about symbolic constants (``assert_text("n <= m")``),
* declare properties of index arrays (permutation, strictly increasing...),
* list the open questions for ambiguous access pairs
  (:meth:`pending_queries`), answer them (:meth:`answer_never`),
* and (re-)analyse the program with everything that is known.

Dependences refuted by an answered query are reported with status
``REFUTED``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from ..ir.ast import Access, Program
from ..ir.parser import _Parser
from ..ir.lexer import tokenize
from ..omega import Constraint, LinearExpr, Problem, Variable, eq as oeq, ge as oge, le as ole
from .dependences import DependenceKind, DependenceStatus
from .engine import AnalysisOptions, analyze
from .results import AnalysisResult
from .symbolic import (
    ArrayProperty,
    DependenceQuery,
    PropertyRegistry,
    generate_query,
    symbolic_dependence_exists,
)

__all__ = ["SymbolicSession", "parse_assertion"]

_COMPARISONS = ("<=", ">=", "=", "<", ">")


def _expr_to_linear(text: str) -> LinearExpr:
    """Parse an affine expression over symbolic constants."""

    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    parser.expect("EOF")
    if not expr.is_affine:
        raise ValueError(f"assertion side {text!r} is not affine")
    result = LinearExpr({}, expr.constant)
    for name, coeff in expr.coeffs.items():
        result = result + LinearExpr({Variable(name, "sym"): coeff})
    return result


def parse_assertion(text: str) -> Constraint:
    """Parse ``"lhs OP rhs"`` with OP in <=, <, =, >=, > into a Constraint.

    Names are symbolic constants.  Example: ``parse_assertion("n <= m")``.
    """

    for op in _COMPARISONS:
        if op in text:
            lhs_text, rhs_text = text.split(op, 1)
            lhs = _expr_to_linear(lhs_text.strip())
            rhs = _expr_to_linear(rhs_text.strip())
            if op == "<=":
                return ole(lhs, rhs)
            if op == ">=":
                return ole(rhs, lhs)
            if op == "<":
                return ole(lhs + 1, rhs)
            if op == ">":
                return ole(rhs + 1, lhs)
            return oeq(lhs, rhs)
    raise ValueError(f"no comparison operator in assertion {text!r}")


def _query_key(query: DependenceQuery) -> tuple:
    return (
        query.src,
        query.dst,
        query.kind,
        tuple(str(component) for component in query.restraint),
    )


class SymbolicSession:
    """Accumulates user knowledge and re-analyses on demand."""

    def __init__(self, program: Program, options: AnalysisOptions | None = None):
        self.program = program
        self.base_options = options or AnalysisOptions()
        self.assertions: list[Constraint] = list(self.base_options.assertions)
        self.properties = PropertyRegistry()
        self._refuted: set[tuple] = set()

    # ------------------------------------------------------------------
    # Knowledge input
    # ------------------------------------------------------------------
    def assert_text(self, text: str) -> "SymbolicSession":
        """Add an assertion like ``"50 <= n"`` or ``"m = n + 10"``."""

        self.assertions.append(parse_assertion(text))
        return self

    def assert_constraint(self, constraint: Constraint) -> "SymbolicSession":
        self.assertions.append(constraint)
        return self

    def declare_property(
        self, array: str, *properties: ArrayProperty
    ) -> "SymbolicSession":
        """State a property of an index array (e.g. permutation)."""

        self.properties.declare(array, *properties)
        return self

    def bound_array_values(self, array: str, lo, hi) -> "SymbolicSession":
        self.properties.bound_values(array, lo, hi)
        return self

    # ------------------------------------------------------------------
    # Dialogue
    # ------------------------------------------------------------------
    def pending_queries(
        self, kinds: Iterable[DependenceKind] = (DependenceKind.FLOW, DependenceKind.OUTPUT)
    ) -> list[DependenceQuery]:
        """Open questions: pairs whose dependence hinges on unknown values.

        Only pairs containing uninterpreted terms generate questions, and
        only when the declared properties do not already settle them.
        """

        queries: list[DependenceQuery] = []
        for kind in kinds:
            for src, dst in self._pairs(kind):
                candidates = generate_query(
                    src,
                    dst,
                    kind,
                    assertions=self.assertions,
                    array_bounds=self.program.array_bounds,
                )
                for query in candidates:
                    if query.is_trivial:
                        continue
                    key = _query_key(query)
                    if key in self._refuted:
                        continue
                    if not symbolic_dependence_exists(
                        src,
                        dst,
                        kind,
                        self.properties,
                        assertions=self.assertions,
                        array_bounds=self.program.array_bounds,
                    ):
                        continue  # properties already settle it
                    queries.append(query)
        return queries

    def answer_never(self, query: DependenceQuery) -> "SymbolicSession":
        """Record a 'yes, that never happens' answer: the dependence the
        query guards is refuted."""

        self._refuted.add(_query_key(query))
        return self

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze(self) -> AnalysisResult:
        """Run the extended analysis under everything currently known."""

        options = AnalysisOptions(
            extended=self.base_options.extended,
            refine=self.base_options.refine,
            cover=self.base_options.cover,
            kill=self.base_options.kill,
            terminate=self.base_options.terminate,
            partial_refine=self.base_options.partial_refine,
            extend_all_kinds=self.base_options.extend_all_kinds,
            assertions=tuple(self.assertions),
            record_timings=self.base_options.record_timings,
        )
        result = analyze(self.program, options)
        if self._refuted:
            refuted_pairs = {(key[0], key[1], key[2]) for key in self._refuted}
            for dep in result.all_dependences():
                if (dep.src, dep.dst, dep.kind) in refuted_pairs:
                    if dep.status is DependenceStatus.LIVE:
                        dep.status = DependenceStatus.REFUTED
        return result

    # ------------------------------------------------------------------
    def _pairs(self, kind: DependenceKind):
        writes = self.program.writes()
        reads = self.program.reads()
        if kind is DependenceKind.FLOW:
            sources, destinations = writes, reads
        elif kind is DependenceKind.ANTI:
            sources, destinations = reads, writes
        else:
            sources, destinations = writes, writes
        for src in sources:
            for dst in destinations:
                if src.array != dst.array:
                    continue
                if not self._mentions_unknowns(src) and not self._mentions_unknowns(dst):
                    continue
                yield src, dst

    @staticmethod
    def _mentions_unknowns(access: Access) -> bool:
        for sub in access.ref.subscripts:
            if not sub.is_affine:
                return True
        for loop in access.statement.loops:
            for bound in loop.lowers + loop.uppers:
                if not bound.is_affine:
                    return True
        return False
