"""Plain-text renderings of the paper's evaluation figures.

Everything renders to monospaced text (no plotting dependencies): an ASCII
scatter for Figure 6 and a sorted dual series for Figure 7, plus the
headline comparison table for the baseline experiment.
"""

from __future__ import annotations

import math
from typing import Sequence

from .timing import TimingStudy, figure6_left_summary, figure6_right_summary

__all__ = ["ascii_scatter", "figure6_text", "figure7_text", "comparison_table"]


def ascii_scatter(
    points: Sequence[tuple[float, float]],
    *,
    width: int = 60,
    height: int = 20,
    marks: Sequence[str] | None = None,
    log: bool = True,
) -> str:
    """Render (x, y) points as an ASCII scatter plot (log-log by default)."""

    if not points:
        return "(no data)\n"

    def transform(value: float) -> float:
        if not log:
            return value
        return math.log10(max(value, 1e-9))

    xs = [transform(x) for x, _y in points]
    ys = [transform(y) for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, ((x, y), tx, ty) in enumerate(zip(points, xs, ys)):
        col = min(width - 1, int((tx - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((ty - y_lo) / y_span * (height - 1)))
        mark = marks[index] if marks else "*"
        grid[height - 1 - row][col] = mark
    lines = ["+" + "-" * width + "+"]
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines) + "\n"


def figure6_text(study: TimingStudy) -> str:
    """Figure 6 as text: scatter + population counts + ratio summary."""

    from ..analysis.results import PairCategory

    points = []
    marks = []
    mark_of = {
        PairCategory.FAST: ".",
        PairCategory.GENERAL: "*",
        PairCategory.SPLIT: "o",
    }
    for record in study.pair_records:
        points.append((record.standard_time, record.extended_time))
        marks.append(mark_of[record.category])

    counts = study.counts()
    left = figure6_left_summary(study)
    right = figure6_right_summary(study)
    lines = [
        "Figure 6 (left): standard (x) vs extended (y) analysis time per "
        "array pair (log-log)",
        ascii_scatter(points, marks=marks),
        f"pairs: {counts['pairs']}  "
        f"fast-path: {counts['fast']}  "
        f"general-test (*): {counts['general']}  "
        f"split (o): {counts['split']}",
        "extended/standard ratio: "
        + "  ".join(
            f"{name}: median {stats['median_ratio']:.2f}x"
            for name, stats in left.items()
            if stats["count"]
        ),
        "",
        "Figure 6 (right): kill tests — "
        f"quick (no Omega): {right['quick_count']} "
        f"(median {right['quick_median_s'] * 1e3:.3f} ms), "
        f"Omega consulted: {right['omega_count']} "
        f"(median {right['omega_median_s'] * 1e3:.3f} ms)",
    ]
    return "\n".join(lines) + "\n"


def figure7_text(series: Sequence[tuple[float, float]], width: int = 72) -> str:
    """Figure 7: per-pair times sorted by extended time, as two bars."""

    if not series:
        return "(no data)\n"
    peak = max(extended for _standard, extended in series) or 1.0
    lines = [
        "Figure 7: analysis time per array pair, sorted by extended time",
        "          (#: extended, =: standard portion)",
    ]
    step = max(1, len(series) // 40)
    for index in range(0, len(series), step):
        standard, extended = series[index]
        bar_ext = int(extended / peak * width)
        bar_std = int(standard / peak * width)
        bar = "=" * bar_std + "#" * max(0, bar_ext - bar_std)
        lines.append(
            f"{index:4d} {extended * 1e3:9.3f}ms |{bar}"
        )
    return "\n".join(lines) + "\n"


def comparison_table(rows: dict[str, dict[str, int]]) -> str:
    """Baseline-vs-Omega false dependence table (program -> counts)."""

    lines = [
        f"{'program':<20}{'baseline':>10}{'omega std':>11}{'omega live':>12}"
    ]
    for name, counts in rows.items():
        lines.append(
            f"{name:<20}{counts['baseline']:>10}"
            f"{counts['omega_standard']:>11}{counts['omega_live']:>12}"
        )
    return "\n".join(lines) + "\n"
