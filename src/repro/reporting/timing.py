"""Figure 6/7 data collection: per-pair timing of standard vs extended
analysis, and kill-test timing.

The paper measured 417 write/read access pairs across its corpus; 264
needed no Omega consultation for the extended checks, 81 ran a general
test on one dependence vector, and 72 were split into several vectors.
``collect_pair_timings`` reproduces the populations and the timing ratios
on our corpus; ``figure7_series`` produces the sorted per-pair series.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Sequence

from ..analysis import AnalysisOptions, analyze
from ..analysis.results import KillTiming, PairCategory, PairRecord
from ..ir.ast import Program

__all__ = [
    "TimingStudy",
    "collect_pair_timings",
    "figure6_left_summary",
    "figure6_right_summary",
    "figure7_series",
]


@dataclass
class TimingStudy:
    """All pair and kill timing records over a corpus."""

    pair_records: list[PairRecord] = field(default_factory=list)
    kill_timings: list[KillTiming] = field(default_factory=list)

    def by_category(self) -> dict[PairCategory, list[PairRecord]]:
        groups: dict[PairCategory, list[PairRecord]] = {
            c: [] for c in PairCategory
        }
        for record in self.pair_records:
            groups[record.category].append(record)
        return groups

    def counts(self) -> dict[str, int]:
        groups = self.by_category()
        return {
            "pairs": len(self.pair_records),
            "fast": len(groups[PairCategory.FAST]),
            "general": len(groups[PairCategory.GENERAL]),
            "split": len(groups[PairCategory.SPLIT]),
            "kill_tests": len(self.kill_timings),
            "kill_quick": sum(1 for k in self.kill_timings if not k.used_omega),
            "kill_omega": sum(1 for k in self.kill_timings if k.used_omega),
        }


def collect_pair_timings(programs: Sequence[Program]) -> TimingStudy:
    """Run extended analysis with timing across a corpus of programs."""

    study = TimingStudy()
    for program in programs:
        result = analyze(program, AnalysisOptions(record_timings=True))
        study.pair_records.extend(result.pair_records)
        study.kill_timings.extend(result.kill_timings)
    return study


def _ratio_stats(records: Sequence[PairRecord]) -> dict[str, float]:
    ratios = [r.ratio for r in records if r.standard_time > 0]
    if not ratios:
        return {"count": 0, "median_ratio": 0.0, "max_ratio": 0.0}
    return {
        "count": len(ratios),
        "median_ratio": statistics.median(ratios),
        "max_ratio": max(ratios),
    }


def figure6_left_summary(study: TimingStudy) -> dict[str, dict[str, float]]:
    """Extended-vs-standard ratios per pair population (Figure 6 left)."""

    groups = study.by_category()
    return {
        "fast": _ratio_stats(groups[PairCategory.FAST]),
        "general": _ratio_stats(groups[PairCategory.GENERAL]),
        "split": _ratio_stats(groups[PairCategory.SPLIT]),
        "all": _ratio_stats(study.pair_records),
    }


def figure6_right_summary(study: TimingStudy) -> dict[str, float]:
    """Kill-test timing summary (Figure 6 right)."""

    quick = [k.kill_time for k in study.kill_timings if not k.used_omega]
    omega = [k.kill_time for k in study.kill_timings if k.used_omega]
    return {
        "quick_count": len(quick),
        "omega_count": len(omega),
        "quick_median_s": statistics.median(quick) if quick else 0.0,
        "omega_median_s": statistics.median(omega) if omega else 0.0,
    }


def figure7_series(study: TimingStudy) -> list[tuple[float, float]]:
    """(standard, extended) per pair, sorted by extended time (Figure 7)."""

    series = [
        (record.standard_time, record.extended_time)
        for record in study.pair_records
    ]
    series.sort(key=lambda pair: pair[1])
    return series
