"""Figure 6/7 data collection: per-pair timing of standard vs extended
analysis, and kill-test timing.

The paper measured 417 write/read access pairs across its corpus; 264
needed no Omega consultation for the extended checks, 81 ran a general
test on one dependence vector, and 72 were split into several vectors.
``collect_pair_timings`` reproduces the populations and the timing ratios
on our corpus; ``figure7_series`` produces the sorted per-pair series.

All durations come from the :mod:`repro.obs` span tracer: each program
runs under its own :class:`~repro.obs.Tracer`, the engine derives
``PairRecord`` / ``KillTiming`` from span durations, and the study keeps
the raw traces so the full corpus run can be exported as one Chrome-trace
JSON (``TimingStudy.write_chrome_trace``) or aggregated per instrumented
site (``TimingStudy.span_totals``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Sequence

from ..analysis import AnalysisOptions, analyze
from ..analysis.results import KillTiming, PairCategory, PairRecord
from ..ir.ast import Program
from ..obs import Profile, SpanEvent, Tracer, chrome_trace, tracing

__all__ = [
    "TimingStudy",
    "collect_pair_timings",
    "figure6_left_summary",
    "figure6_right_summary",
    "figure7_series",
]


@dataclass
class TimingStudy:
    """All pair and kill timing records over a corpus, plus raw traces."""

    pair_records: list[PairRecord] = field(default_factory=list)
    kill_timings: list[KillTiming] = field(default_factory=list)
    traces: list[tuple[str, Tracer]] = field(default_factory=list)

    def by_category(self) -> dict[PairCategory, list[PairRecord]]:
        groups: dict[PairCategory, list[PairRecord]] = {
            c: [] for c in PairCategory
        }
        for record in self.pair_records:
            groups[record.category].append(record)
        return groups

    def counts(self) -> dict[str, int]:
        groups = self.by_category()
        return {
            "pairs": len(self.pair_records),
            "fast": len(groups[PairCategory.FAST]),
            "general": len(groups[PairCategory.GENERAL]),
            "split": len(groups[PairCategory.SPLIT]),
            "kill_tests": len(self.kill_timings),
            "kill_quick": sum(1 for k in self.kill_timings if not k.used_omega),
            "kill_omega": sum(1 for k in self.kill_timings if k.used_omega),
        }

    # -- span-level views ----------------------------------------------
    def span_events(self) -> list[SpanEvent]:
        """Every span event recorded across the corpus, program order."""

        events: list[SpanEvent] = []
        for _name, tracer in self.traces:
            events.extend(tracer.events)
        return events

    def span_totals(self) -> dict[str, tuple[int, float]]:
        """Per-site ``(call count, total seconds)`` over the whole corpus."""

        totals: dict[str, tuple[int, float]] = {}
        for event in self.span_events():
            count, seconds = totals.get(event.name, (0, 0.0))
            totals[event.name] = (count + 1, seconds + event.duration)
        return totals

    def profile(self) -> Profile:
        """Aggregate every recorded span tree into one corpus profile."""

        return Profile.from_events(self.span_events())

    def to_chrome_trace(self) -> dict:
        """The whole corpus as one Chrome-trace object.

        Each program's tracer has its own ``perf_counter`` origin, so the
        per-program timelines are rebased end-to-end to stay readable.
        """

        rebased: list[SpanEvent] = []
        offset = 0.0
        for _name, tracer in self.traces:
            if not tracer.events:
                continue
            end = max(e.start + e.duration for e in tracer.events)
            for event in tracer.events:
                rebased.append(
                    SpanEvent(
                        event.name,
                        event.start - tracer.origin + offset,
                        event.duration,
                        event.thread_id,
                        event.parent,
                        event.depth,
                        event.attrs,
                    )
                )
            offset += end - tracer.origin
        return chrome_trace(rebased)

    def write_chrome_trace(self, path) -> None:
        import json

        with open(path, "w") as sink:
            json.dump(self.to_chrome_trace(), sink, indent=1)


def collect_pair_timings(programs: Sequence[Program]) -> TimingStudy:
    """Run extended analysis with timing across a corpus of programs."""

    study = TimingStudy()
    for program in programs:
        tracer = Tracer()
        with tracing(tracer):
            result = analyze(program, AnalysisOptions(record_timings=True))
        study.pair_records.extend(result.pair_records)
        study.kill_timings.extend(result.kill_timings)
        study.traces.append((program.name, tracer))
    return study


def _ratio_stats(records: Sequence[PairRecord]) -> dict[str, float]:
    ratios = [r.ratio for r in records if r.standard_time > 0]
    if not ratios:
        return {"count": 0, "median_ratio": 0.0, "max_ratio": 0.0}
    return {
        "count": len(ratios),
        "median_ratio": statistics.median(ratios),
        "max_ratio": max(ratios),
    }


def figure6_left_summary(study: TimingStudy) -> dict[str, dict[str, float]]:
    """Extended-vs-standard ratios per pair population (Figure 6 left)."""

    groups = study.by_category()
    return {
        "fast": _ratio_stats(groups[PairCategory.FAST]),
        "general": _ratio_stats(groups[PairCategory.GENERAL]),
        "split": _ratio_stats(groups[PairCategory.SPLIT]),
        "all": _ratio_stats(study.pair_records),
    }


def figure6_right_summary(study: TimingStudy) -> dict[str, float]:
    """Kill-test timing summary (Figure 6 right)."""

    quick = [k.kill_time for k in study.kill_timings if not k.used_omega]
    omega = [k.kill_time for k in study.kill_timings if k.used_omega]
    return {
        "quick_count": len(quick),
        "omega_count": len(omega),
        "quick_median_s": statistics.median(quick) if quick else 0.0,
        "omega_median_s": statistics.median(omega) if omega else 0.0,
    }


def figure7_series(study: TimingStudy) -> list[tuple[float, float]]:
    """(standard, extended) per pair, sorted by extended time (Figure 7)."""

    series = [
        (record.standard_time, record.extended_time)
        for record in study.pair_records
    ]
    series.sort(key=lambda pair: pair[1])
    return series
