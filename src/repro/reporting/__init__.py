"""Regeneration of the paper's evaluation figures and tables."""

from .figures import ascii_scatter, comparison_table, figure6_text, figure7_text
from .precision import (
    BASELINES,
    PrecisionComparison,
    audit_program,
    baseline_verdicts,
    compare_precision,
    load_precision,
    precision_markdown_table,
    precision_report,
    render_precision,
    why_records,
)
from .serialize import dependence_to_dict, result_to_dict, result_to_json
from .tables import DependenceRow, flow_rows, flow_tables, format_rows
from .timing import (
    TimingStudy,
    collect_pair_timings,
    figure6_left_summary,
    figure6_right_summary,
    figure7_series,
)

__all__ = [
    "flow_tables",
    "flow_rows",
    "format_rows",
    "DependenceRow",
    "TimingStudy",
    "collect_pair_timings",
    "figure6_left_summary",
    "figure6_right_summary",
    "figure7_series",
    "ascii_scatter",
    "figure6_text",
    "figure7_text",
    "comparison_table",
    "dependence_to_dict",
    "result_to_dict",
    "result_to_json",
    # precision
    "BASELINES",
    "PrecisionComparison",
    "audit_program",
    "baseline_verdicts",
    "compare_precision",
    "load_precision",
    "precision_markdown_table",
    "precision_report",
    "render_precision",
    "why_records",
]
