"""Figure 3/4-style dependence tables.

``flow_tables`` renders the live and dead flow dependences of an analysis
in the paper's format::

    FROM              TO                 dir/dist    status
    3: A(L,I,J)       3: A(L,I,J)        (0,0,1,0)   [ r]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.dependences import Dependence, DependenceStatus
from ..analysis.results import AnalysisResult

__all__ = ["DependenceRow", "flow_rows", "flow_tables", "format_rows"]


@dataclass(frozen=True)
class DependenceRow:
    source: str
    destination: str
    direction: str
    status: str

    def key(self) -> tuple[str, str]:
        return (self.source, self.destination)


def _row(dep: Dependence) -> DependenceRow:
    return DependenceRow(
        str(dep.src),
        str(dep.dst),
        dep.direction_text(),
        f"[{dep.tags()}]" if dep.tags() else "",
    )


def flow_rows(result: AnalysisResult) -> tuple[list[DependenceRow], list[DependenceRow]]:
    """(live rows, dead rows), each sorted by statement labels."""

    def sort_key(dep: Dependence):
        return (
            dep.src.statement.position,
            dep.src.slot,
            dep.dst.statement.position,
            dep.dst.slot,
        )

    live = [_row(d) for d in sorted(result.live_flow(), key=sort_key)]
    dead = [_row(d) for d in sorted(result.dead_flow(), key=sort_key)]
    return live, dead


def format_rows(rows: Sequence[DependenceRow], title: str) -> str:
    """Render rows as an aligned FROM/TO/dir-dist/status table."""

    if not rows:
        return f"{title}\n  (none)\n"
    width_from = max(len(r.source) for r in rows) + 2
    width_to = max(len(r.destination) for r in rows) + 2
    width_dir = max([len(r.direction) for r in rows] + [8]) + 2
    lines = [title]
    header = (
        f"  {'FROM':<{width_from}}{'TO':<{width_to}}"
        f"{'dir/dist':<{width_dir}}status"
    )
    lines.append(header)
    for row in rows:
        lines.append(
            f"  {row.source:<{width_from}}{row.destination:<{width_to}}"
            f"{row.direction:<{width_dir}}{row.status}"
        )
    return "\n".join(lines) + "\n"


def flow_tables(result: AnalysisResult) -> str:
    """The Figure 3 + Figure 4 pair of tables as text."""

    live, dead = flow_rows(result)
    return (
        format_rows(live, f"Live flow dependences for {result.program.name}")
        + "\n"
        + format_rows(dead, f"Dead flow dependences for {result.program.name}")
    )
