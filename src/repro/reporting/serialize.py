"""JSON-friendly serialization of analysis results.

``result_to_dict`` flattens an :class:`AnalysisResult` into plain dicts and
lists (statement labels, access strings, direction texts, statuses) so
other tools can consume the analysis without importing the library's
object model.  The output is stable across runs for the same program.
"""

from __future__ import annotations

import json
from typing import Any

from ..analysis.dependences import Dependence
from ..analysis.results import AnalysisResult

__all__ = ["dependence_to_dict", "result_to_dict", "result_to_json"]


def dependence_to_dict(dep: Dependence) -> dict[str, Any]:
    """One dependence as a JSON-serializable dictionary."""

    return {
        "kind": dep.kind.value,
        "status": dep.status.value,
        "source": {
            "statement": dep.src.statement.label,
            "reference": str(dep.src.ref),
            "is_write": dep.src.is_write,
        },
        "destination": {
            "statement": dep.dst.statement.label,
            "reference": str(dep.dst.ref),
            "is_write": dep.dst.is_write,
        },
        "restraint": str(dep.restraint) if len(dep.restraint) else None,
        "directions": [str(v) for v in dep.directions],
        "unrefined_directions": [str(v) for v in dep.unrefined_directions],
        "refined": dep.refined,
        "covers": dep.covers,
        "eliminated_by": (
            {
                "source": str(dep.eliminated_by.src),
                "destination": str(dep.eliminated_by.dst),
                "kind": dep.eliminated_by.kind.value,
            }
            if dep.eliminated_by is not None
            else None
        ),
    }


def result_to_dict(result: AnalysisResult) -> dict[str, Any]:
    """The whole analysis as a JSON-serializable dictionary."""

    return {
        "program": result.program.name,
        "statements": [
            {
                "label": stmt.label,
                "text": str(stmt),
                "loops": list(stmt.loop_vars),
            }
            for stmt in result.program.statements
        ],
        "flow": [dependence_to_dict(d) for d in result.flow],
        "anti": [dependence_to_dict(d) for d in result.anti],
        "output": [dependence_to_dict(d) for d in result.output],
        "input": [dependence_to_dict(d) for d in result.input],
        "counts": result.counts(),
        "provenance": (
            [record.to_dict() for record in result.provenance]
            if result.provenance
            else None
        ),
        "degraded": result.degraded(),
        "degradations": (
            [
                {
                    "subject": event.subject,
                    "kind": event.kind,
                    "site": event.site,
                    "budget": event.budget,
                    "limit": event.limit,
                    "spent": event.spent,
                    "answer": event.answer,
                }
                for event in result.degradations
            ]
            if result.degradations is not None
            else None
        ),
    }


def result_to_json(result: AnalysisResult, **json_kwargs: Any) -> str:
    """The analysis as a JSON string (``indent=2`` by default)."""

    json_kwargs.setdefault("indent", 2)
    return json.dumps(result_to_dict(result), **json_kwargs)
