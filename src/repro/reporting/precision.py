"""The precision scoreboard and its CI gate.

The benchmark harness (``repro.bench``) gates *speed*; this module gates
*precision* — the paper's actual headline claim.  :func:`precision_report`
runs the audited Omega pipeline (``AnalysisOptions(audit=True)``) and every
classical baseline in :mod:`repro.baselines` over the corpus, and counts,
per program, the flow-dependence pairs each would report.  The result is
the ``results/precision_omega.json`` artifact (schema ``repro.precision/1``,
written by ``python -m repro audit``): per-corpus baseline-vs-Omega counts,
the false-dependence elimination rate, and the exact-vs-inexact breakdown
from the provenance records.

:func:`compare_precision` is the CI gate, in :mod:`repro.bench.compare`
style: it fails when the elimination rate drops (more live pairs than the
committed artifact) or when any exact answer becomes inexact.  Counts are
integers and the audit layer is bit-identical across workers/cache
settings, so the gate needs no tolerance threshold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..analysis import AnalysisOptions, analyze
from ..analysis.results import AnalysisResult
from ..baselines.banerjee import banerjee_directions
from ..baselines.common import dimension_problems, pair_loop_ranges
from ..baselines.gcdtest import gcd_test
from ..baselines.siv import siv_test
from ..baselines.suite import _common_vars, _has_forward_direction, combined_test
from ..baselines.ziv import ziv_test
from ..ir.ast import Access, Program
from ..obs.audit import ProvenanceRecord

__all__ = [
    "SCHEMA",
    "BASELINES",
    "baseline_verdicts",
    "audit_program",
    "precision_report",
    "render_precision",
    "precision_markdown_table",
    "PrecisionDelta",
    "PrecisionComparison",
    "compare_precision",
    "load_precision",
    "why_records",
]

SCHEMA = "repro.precision/1"

#: Classical tests compared against the Omega pipeline, weakest first.
#: ``ziv``/``siv``/``gcd`` answer the memory-overlap question per subscript
#: dimension; ``banerjee`` adds direction-vector hierarchies; ``combined``
#: chains all four the way a 1992 production compiler would.
BASELINES = ("ziv", "siv", "gcd", "banerjee", "combined")


def baseline_verdicts(src: Access, dst: Access) -> dict[str, bool]:
    """Would each classical baseline report a flow dependence for a pair?

    True means the test could not refute the dependence (it would be
    conservatively reported).  The Banerjee and combined baselines also
    require a surviving lexicographically-forward direction, like
    :func:`repro.baselines.baseline_dependences` does.
    """

    if src.array != dst.array or len(src.ref.subscripts) != len(
        dst.ref.subscripts
    ):
        return {name: False for name in BASELINES}
    dimensions = dimension_problems(src, dst)
    common = _common_vars(src, dst)
    ranges = pair_loop_ranges(src, dst)

    verdicts = {
        "ziv": all(ziv_test(dim) for dim in dimensions),
        "siv": all(siv_test(dim, common, ranges) for dim in dimensions),
        "gcd": all(gcd_test(dim) for dim in dimensions),
    }
    directions = banerjee_directions(dimensions, common, ranges)
    verdicts["banerjee"] = bool(directions) and _has_forward_direction(
        src, dst, directions
    )
    combined, combined_dirs = combined_test(src, dst)
    verdicts["combined"] = bool(combined) and _has_forward_direction(
        src, dst, combined_dirs
    )
    return verdicts


def _pair_key(record: ProvenanceRecord) -> tuple[str, str]:
    return (record.src, record.dst)


def audit_program(
    program: Program,
    *,
    workers: int = 1,
    cache: bool | None = None,
    backend: str | None = None,
) -> tuple[dict, AnalysisResult]:
    """One program's precision section, plus the audited analysis result.

    The section counts flow-dependence *pairs* (a split dependence still
    decides one pair) so baseline and Omega numbers are commensurable; the
    record-level verdict/exactness breakdown rides alongside.
    """

    options = AnalysisOptions(audit=True, workers=workers, backend=backend)
    if cache is not None:
        options.cache = cache
    result = analyze(program, options)

    baselines = {name: 0 for name in BASELINES}
    pairs = 0
    for write in program.writes():
        for read in program.reads():
            if write.array != read.array:
                continue
            pairs += 1
            for name, reported in baseline_verdicts(write, read).items():
                if reported:
                    baselines[name] += 1

    flow_records = [r for r in result.provenance if r.kind == "flow"]
    standard_pairs = {
        _pair_key(r) for r in flow_records if r.verdict != "independent"
    }
    live_pairs = {
        _pair_key(r) for r in flow_records if r.verdict == "reported"
    }
    record_counts = {"reported": 0, "eliminated": 0, "independent": 0}
    stage_counts: dict[str, int] = {}
    exact = inexact = 0
    for record in flow_records:
        record_counts[record.verdict] += 1
        if record.verdict == "eliminated":
            stage = record.stage
            stage_counts[stage] = stage_counts.get(stage, 0) + 1
        if record.exact:
            exact += 1
        else:
            inexact += 1

    section = {
        "program": program.name,
        "pairs": pairs,
        "baselines": baselines,
        "omega": {
            "standard": len(standard_pairs),
            "live": len(live_pairs),
            "records": record_counts,
            "stages": dict(sorted(stage_counts.items())),
            "exact": exact,
            "inexact": inexact,
        },
    }
    return section, result


def _rate(eliminated: int, total: int) -> float:
    return round(eliminated / total, 4) if total else 0.0


def precision_report(
    programs: Sequence[Program] | None = None,
    *,
    workers: int = 1,
    cache: bool | None = None,
    backend: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """The full ``repro.precision/1`` artifact over ``programs``.

    Defaults to the whole paper corpus.  Deliberately free of timestamps
    and machine fingerprints: the artifact is bit-stable for one source
    tree, so CI can diff it against the committed copy.
    """

    if programs is None:
        from ..programs import corpus_programs

        programs = corpus_programs()

    sections = []
    for program in programs:
        if progress is not None:
            progress(program.name)
        section, _ = audit_program(
            program, workers=workers, cache=cache, backend=backend
        )
        sections.append(section)

    totals = {
        "pairs": 0,
        "baselines": {name: 0 for name in BASELINES},
        "omega_standard": 0,
        "omega_live": 0,
        "records": {"reported": 0, "eliminated": 0, "independent": 0},
        "exact": 0,
        "inexact": 0,
    }
    for section in sections:
        totals["pairs"] += section["pairs"]
        for name in BASELINES:
            totals["baselines"][name] += section["baselines"][name]
        omega = section["omega"]
        totals["omega_standard"] += omega["standard"]
        totals["omega_live"] += omega["live"]
        for verdict, count in omega["records"].items():
            totals["records"][verdict] += count
        totals["exact"] += omega["exact"]
        totals["inexact"] += omega["inexact"]
    totals["elimination_rate"] = _rate(
        totals["omega_standard"] - totals["omega_live"],
        totals["omega_standard"],
    )
    totals["false_dependence_rate"] = {
        name: _rate(count - totals["omega_live"], count)
        for name, count in totals["baselines"].items()
    }

    return {
        "schema": SCHEMA,
        "settings": {"workers": workers, "extended": True},
        "programs": sections,
        "totals": totals,
    }


def render_precision(artifact: dict) -> str:
    """The scoreboard as an aligned text table."""

    header = (
        f"{'program':<16}{'pairs':>6}"
        + "".join(f"{name:>10}" for name in BASELINES)
        + f"{'omega':>8}{'live':>6}{'elim%':>7}{'inexact':>8}"
    )
    lines = ["precision scoreboard (flow-dependence pairs reported)", header]
    for section in artifact.get("programs", []):
        omega = section["omega"]
        eliminated = omega["standard"] - omega["live"]
        rate = _rate(eliminated, omega["standard"])
        lines.append(
            f"{section['program']:<16}{section['pairs']:>6}"
            + "".join(
                f"{section['baselines'][name]:>10}" for name in BASELINES
            )
            + f"{omega['standard']:>8}{omega['live']:>6}"
            + f"{rate:>7.0%}{omega['inexact']:>8}"
        )
    totals = artifact.get("totals")
    if totals:
        lines.append(
            f"{'TOTAL':<16}{totals['pairs']:>6}"
            + "".join(
                f"{totals['baselines'][name]:>10}" for name in BASELINES
            )
            + f"{totals['omega_standard']:>8}{totals['omega_live']:>6}"
            + f"{totals['elimination_rate']:>7.0%}{totals['inexact']:>8}"
        )
        combined = totals["false_dependence_rate"].get("combined", 0.0)
        lines.append(
            f"false dependences eliminated vs the combined classical test: "
            f"{combined:.0%}"
        )
    return "\n".join(lines)


def precision_markdown_table(
    artifact: dict, names: Sequence[str] | None = None
) -> str:
    """A Markdown precision table (the README regenerates from this)."""

    lines = [
        "| program | pairs | combined baseline | omega standard | omega live"
        " | eliminated |",
        "|---|---|---|---|---|---|",
    ]
    for section in artifact.get("programs", []):
        if names is not None and section["program"] not in names:
            continue
        omega = section["omega"]
        eliminated = omega["standard"] - omega["live"]
        rate = _rate(eliminated, omega["standard"])
        lines.append(
            f"| {section['program']} | {section['pairs']} "
            f"| {section['baselines']['combined']} | {omega['standard']} "
            f"| {omega['live']} | {eliminated} ({rate:.0%}) |"
        )
    totals = artifact.get("totals")
    if totals and names is None:
        eliminated = totals["omega_standard"] - totals["omega_live"]
        lines.append(
            f"| **corpus total** | {totals['pairs']} "
            f"| {totals['baselines']['combined']} | {totals['omega_standard']} "
            f"| {totals['omega_live']} "
            f"| {eliminated} ({totals['elimination_rate']:.0%}) |"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The CI gate
# ---------------------------------------------------------------------------


def load_precision(path) -> dict:
    with open(path) as source:
        return json.load(source)


@dataclass
class PrecisionDelta:
    """One per-program precision count, committed vs fresh."""

    program: str
    what: str  #: "live pairs" | "inexact records"
    old: int
    new: int

    @property
    def regressed(self) -> bool:
        return self.new > self.old

    def describe(self) -> str:
        return f"{self.program}: {self.what} {self.old} -> {self.new}"


@dataclass
class PrecisionComparison:
    """The precision gate verdict (``repro.bench.compare`` style)."""

    deltas: list[PrecisionDelta] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[PrecisionDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def render(self) -> str:
        lines = [
            "precision comparison (gate: live pairs must not grow, exact "
            "answers must stay exact)"
        ]
        for delta in self.deltas:
            verdict = "REGRESSED" if delta.regressed else "ok"
            lines.append(f"  [{verdict:>9}] {delta.describe()}")
        for program in self.missing:
            lines.append(
                f"  [  MISSING] {program}: program absent from new artifact"
            )
        lines.append(
            "gate: PASS"
            if self.ok
            else f"gate: FAIL ({len(self.regressions)} regression(s), "
            f"{len(self.missing)} missing program(s))"
        )
        return "\n".join(lines)


def compare_precision(old: dict, new: dict) -> PrecisionComparison:
    """Gate a fresh precision artifact against the committed baseline.

    Regressions: a program reporting *more* live flow pairs than before
    (the elimination rate dropped) or *more* inexact records (an exact
    answer became inexact).  Programs the new artifact dropped fail too.
    Improvements (fewer live pairs, fewer inexact records) pass and are
    reported — commit the regenerated artifact to ratchet them in.
    """

    comparison = PrecisionComparison()
    new_sections = {
        section["program"]: section for section in new.get("programs", [])
    }
    for old_section in old.get("programs", []):
        name = old_section["program"]
        new_section = new_sections.get(name)
        if new_section is None:
            comparison.missing.append(name)
            continue
        comparison.deltas.append(
            PrecisionDelta(
                name,
                "live pairs",
                old_section["omega"]["live"],
                new_section["omega"]["live"],
            )
        )
        comparison.deltas.append(
            PrecisionDelta(
                name,
                "inexact records",
                old_section["omega"]["inexact"],
                new_section["omega"]["inexact"],
            )
        )
    return comparison


# ---------------------------------------------------------------------------
# --why support
# ---------------------------------------------------------------------------


def why_records(
    result: AnalysisResult, src: str, dst: str
) -> list[ProvenanceRecord]:
    """Provenance records whose endpoints match two access descriptions.

    Matching is by exact access string first (``"s1: a(i,j)"``), falling
    back to substring so the CLI's ``--why s1 s3`` works with bare
    statement labels.
    """

    exact = [
        r for r in result.provenance if r.src == src and r.dst == dst
    ]
    if exact:
        return exact
    return [
        r
        for r in result.provenance
        if src in r.src and dst in r.dst
    ]
