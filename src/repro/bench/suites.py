"""Benchmark suite definitions over the paper's workloads.

Each suite is one deterministic unit of repeatable work, mirroring the
populations of the paper's timing study:

``corpus``
    Full extended analysis over the Figure 6/7 timing corpus (the
    *tiny*-style kernels plus paper examples 1-6) — the workload behind
    the per-pair timing reproduction.
``cholsky``
    Extended analysis of the NAS CHOLSKY kernel alone (Figures 3/4).
``symbolic``
    The Section 5 symbolic machinery: Example 7's dependence conditions
    under the ``50 <= n <= 100`` assertion and Example 8's index-array
    queries.

A suite's ``run(cache, workers, planner, backend)`` callable performs one
timed iteration.  The ``cache`` flag selects the solver-cache leg;
``workers`` selects the solver-service worker count (the parallel leg);
``planner`` selects the single-pass query planner (the ``legacy`` leg
turns it off to time the per-pair path); ``backend`` selects the solver
execution backend (the ``process`` leg runs Omega primitives on a
process pool).  With ``workers > 1`` the
corpus runs under one explicit :class:`repro.solver.SolverService` scope,
so the service's dedup memo is shared across the corpus programs within
the iteration — the state the parallel leg is designed to exploit.  State
never leaks *between* iterations (the service, like the symbolic suite's
cache scope, is rebuilt per call), so trials stay independent and cold.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable

from ..analysis import AnalysisOptions, DependenceKind, analyze
from ..analysis.symbolic import dependence_conditions, generate_query
from ..omega import SolverCache, Variable, caching, le
from ..programs import cholsky, example7, example8, timing_corpus
from ..solver import SolverService

__all__ = ["SUITES", "Suite", "default_suites"]


@dataclass(frozen=True)
class Suite:
    """One benchmarkable workload; ``run(cache, workers)`` is a single
    iteration."""

    name: str
    description: str
    run: Callable[..., None]


def _run_corpus(
    cache: bool,
    workers: int = 1,
    planner: bool = True,
    backend: str | None = None,
) -> None:
    options = AnalysisOptions(
        cache=cache, workers=workers, planner=planner, backend=backend
    )
    if workers > 1:
        service = SolverService(workers=workers, cache=cache, backend=backend)
        try:
            with service.activate():
                for program in timing_corpus():
                    analyze(program, options)
        finally:
            service.close()
        return
    for program in timing_corpus():
        analyze(program, options)


def _run_cholsky(
    cache: bool,
    workers: int = 1,
    planner: bool = True,
    backend: str | None = None,
) -> None:
    analyze(
        cholsky(),
        AnalysisOptions(
            cache=cache, workers=workers, planner=planner, backend=backend
        ),
    )


def _run_symbolic(
    cache: bool,
    workers: int = 1,
    planner: bool = True,
    backend: str | None = None,
) -> None:
    # ``planner`` and ``backend`` are accepted for leg-signature
    # uniformity but have no effect: the symbolic suite drives the solver
    # directly, without the analysis engine or a solver service, so there
    # is no pair traversal to plan and no service to re-backend.
    scope = caching(SolverCache()) if cache else nullcontext()
    with scope:
        program = example7()
        write = [a for a in program.writes() if a.array == "A"][0]
        read = [a for a in program.reads() if a.array == "A"][0]
        n = Variable("n", "sym")
        dependence_conditions(
            write,
            read,
            DependenceKind.FLOW,
            assertions=[le(50, n), le(n, 100)],
            array_bounds=program.array_bounds,
            keep_syms=[
                Variable("x", "sym"),
                Variable("y", "sym"),
                Variable("m", "sym"),
            ],
        )
        program = example8()
        write = [a for a in program.writes() if a.array == "A"][0]
        read = [a for a in program.reads() if a.array == "A"][0]
        generate_query(
            write, write, DependenceKind.OUTPUT, array_bounds=program.array_bounds
        )
        generate_query(
            write, read, DependenceKind.FLOW, array_bounds=program.array_bounds
        )


SUITES: dict[str, Suite] = {
    suite.name: suite
    for suite in (
        Suite(
            "corpus",
            "extended analysis over the Figure 6/7 timing corpus",
            _run_corpus,
        ),
        Suite(
            "cholsky",
            "extended analysis of the NAS CHOLSKY kernel (Figures 3/4)",
            _run_cholsky,
        ),
        Suite(
            "symbolic",
            "Example 7 conditions + Example 8 index-array queries (Section 5)",
            _run_symbolic,
        ),
    )
}


def default_suites() -> list[Suite]:
    return list(SUITES.values())
