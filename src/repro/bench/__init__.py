"""Benchmark harness and regression gate for the Omega pipeline.

The paper's central empirical claim (Figures 6/7) is that exact dependence
analysis is fast enough in practice; this package keeps that claim — and
every optimisation layered on top of it — continuously measured:

``repro.bench.suites``
    The workloads: the Figure 6/7 timing corpus, the CHOLSKY kernel, and
    the Section 5 symbolic examples, each runnable with the solver cache
    on or off.
``repro.bench.harness``
    Warmup + repeated trials per suite and leg, median/IQR statistics, a
    machine fingerprint, and the canonical ``BENCH_omega.json`` artifact;
    ``profile_suites`` runs one traced pass for hotspot tables and
    flamegraphs.
``repro.bench.compare``
    The regression gate: compares two artifacts and flags any suite whose
    median regressed past the threshold (CI fails the build at >25%).

Driven by ``python -m repro bench`` — see ``docs/BENCHMARKING.md``.
"""

from .compare import (
    DEFAULT_THRESHOLD,
    Comparison,
    Delta,
    compare,
    load_artifact,
)
from .harness import (
    GUARD_OVERHEAD_THRESHOLD,
    HISTORY_SCHEMA,
    PLANNER_SPEEDUP_THRESHOLD,
    SCHEMA,
    WORKERS_SPEEDUP_THRESHOLD,
    BenchReport,
    LegResult,
    SuiteResult,
    append_history,
    guard_overhead_gate,
    history_entry,
    machine_fingerprint,
    planner_speedup_gate,
    profile_suites,
    render_report,
    run_bench,
    workers_speedup_gate,
)
from .serve import (
    SERVE_BENCH_SCHEMA,
    render_serve_bench,
    run_serve_bench,
)
from .suites import SUITES, Suite, default_suites

__all__ = [
    "SERVE_BENCH_SCHEMA",
    "render_serve_bench",
    "run_serve_bench",
    "GUARD_OVERHEAD_THRESHOLD",
    "HISTORY_SCHEMA",
    "PLANNER_SPEEDUP_THRESHOLD",
    "SCHEMA",
    "WORKERS_SPEEDUP_THRESHOLD",
    "DEFAULT_THRESHOLD",
    "append_history",
    "history_entry",
    "BenchReport",
    "Comparison",
    "Delta",
    "LegResult",
    "Suite",
    "SuiteResult",
    "SUITES",
    "compare",
    "default_suites",
    "guard_overhead_gate",
    "load_artifact",
    "machine_fingerprint",
    "planner_speedup_gate",
    "profile_suites",
    "render_report",
    "run_bench",
    "workers_speedup_gate",
]
