"""Artifact comparison: the CI regression gate.

``compare`` takes two ``BENCH_omega.json``-shaped dicts — the committed
baseline and a fresh run — and flags every suite/leg whose median regressed
past the threshold (default 25%, matching the CI gate).  Suites the new
artifact dropped are regressions too: a gate that only checks what still
runs can be silently starved.  Improvements and new suites are reported
but never fail the gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Comparison", "Delta", "DEFAULT_THRESHOLD", "compare", "load_artifact"]

DEFAULT_THRESHOLD = 0.25


def _leg_label(leg: str) -> str:
    """Human label for a leg: cache legs keep their historical prefix."""

    return f"cache-{leg}" if leg in ("on", "off") else leg


def load_artifact(path) -> dict:
    with open(path) as source:
        return json.load(source)


@dataclass
class Delta:
    """One suite/leg median, old vs new."""

    suite: str
    leg: str
    old_median: float
    new_median: float

    @property
    def ratio(self) -> float:
        if self.old_median == 0:
            return float("inf") if self.new_median > 0 else 1.0
        return self.new_median / self.old_median

    def describe(self) -> str:
        change = self.ratio - 1.0
        return (
            f"{self.suite}/{_leg_label(self.leg)}: "
            f"{self.old_median:.4f}s -> {self.new_median:.4f}s "
            f"({change:+.0%})"
        )


@dataclass
class Comparison:
    threshold: float
    deltas: list[Delta] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)  #: suites dropped by new

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.ratio > 1.0 + self.threshold]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def render(self) -> str:
        lines = [
            f"benchmark comparison (regression threshold: "
            f"+{self.threshold:.0%} on the median)"
        ]
        for delta in self.deltas:
            regressed = delta.ratio > 1.0 + self.threshold
            verdict = "REGRESSED" if regressed else "ok"
            lines.append(f"  [{verdict:>9}] {delta.describe()}")
        for suite in self.missing:
            lines.append(f"  [  MISSING] {suite}: suite absent from new artifact")
        lines.append(
            "gate: PASS" if self.ok else f"gate: FAIL ({len(self.regressions)} "
            f"regression(s), {len(self.missing)} missing suite(s))"
        )
        return "\n".join(lines)


def compare(
    old: dict, new: dict, *, threshold: float = DEFAULT_THRESHOLD
) -> Comparison:
    """Compare two benchmark artifacts, old (baseline) against new."""

    comparison = Comparison(threshold)
    old_suites = old.get("suites", {})
    new_suites = new.get("suites", {})
    for suite_name, old_suite in sorted(old_suites.items()):
        new_suite = new_suites.get(suite_name)
        if new_suite is None:
            comparison.missing.append(suite_name)
            continue
        for leg, old_leg in sorted(old_suite.get("legs", {}).items()):
            new_leg = new_suite.get("legs", {}).get(leg)
            if new_leg is None:
                comparison.missing.append(f"{suite_name}/{_leg_label(leg)}")
                continue
            comparison.deltas.append(
                Delta(
                    suite_name,
                    leg,
                    old_leg["median_s"],
                    new_leg["median_s"],
                )
            )
    return comparison
