"""The benchmark runner: warmup + trials, medians, artifact emission.

``run_bench`` times each suite (see :mod:`repro.bench.suites`) in both
solver-cache legs — ``on`` and ``off`` — with a warmup pass followed by
repeated trials, and reports the median and interquartile range per leg.
Medians over independent trials are the paper's own methodology for a
shared machine: one slow outlier (a GC pause, a scheduler hiccup) moves
the mean but not the median.

The result serializes to the canonical ``BENCH_omega.json`` artifact: a
schema tag, a machine fingerprint (platform, Python build, CPU count —
enough to recognise that two artifacts are not comparable), the runner
settings, and per-suite / per-leg statistics including the raw trials.
``render_report`` produces the human-readable table written to
``results/bench_omega.txt``.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from datetime import datetime, timezone
from time import perf_counter
from typing import Callable, Sequence

from contextlib import nullcontext

from ..guard import budget as _guard
from ..obs import Profile, Tracer, tracing

# Run identity (fingerprint, git SHA) lives in the telemetry ledger now;
# re-exported here because bench artifacts carry the same fields.
from ..obs.telemetry.ledger import git_sha as _git_sha
from ..obs.telemetry.ledger import machine_fingerprint
from .suites import Suite, default_suites

__all__ = [
    "GUARD_OVERHEAD_THRESHOLD",
    "HISTORY_SCHEMA",
    "PLANNER_SPEEDUP_THRESHOLD",
    "SCHEMA",
    "WORKERS_SPEEDUP_THRESHOLD",
    "BenchReport",
    "LegResult",
    "SuiteResult",
    "append_history",
    "guard_overhead_gate",
    "history_entry",
    "machine_fingerprint",
    "planner_speedup_gate",
    "profile_suites",
    "render_report",
    "run_bench",
    "workers_speedup_gate",
]

SCHEMA = "repro.bench/1"

#: Schema of one line in ``results/bench_history.jsonl``.
HISTORY_SCHEMA = "repro.bench-history/1"

#: Legs, in run order.  "on" exercises the memoizing solver facade, "off"
#: the raw solver — that pair keeps the cache speedup regression-gated —
#: "workers4" the pipelined solver service (4 workers, cache on), gating
#: the serial-vs-parallel speedup, "process" the same fan-out on the
#: process execution backend (Omega primitives escape the GIL; see
#: repro.solver.backends), gating true multi-core scaling, "guard" the
#: serial cached configuration under a governed (but unlimited) resource
#: budget, gating the cost of the checkpoint machinery itself, and
#: "legacy" the per-pair analysis path with the single-pass query planner
#: disabled, gating the planner's speedup.  Governed runs fall back to
#: the per-pair path by design, so the guard leg also runs with the
#: planner off and its overhead is measured against "legacy" (same
#: analysis path, no governance).
LEGS = ("on", "off", "workers4", "process", "guard", "legacy")

#: Leg name -> (cache, workers, planner, backend) configuration.
LEG_CONFIG: dict[str, tuple[bool, int, bool, str | None]] = {
    "on": (True, 1, True, None),
    "off": (False, 1, True, None),
    "workers4": (True, 4, True, "thread"),
    "process": (True, 4, True, "process"),
    "guard": (True, 1, False, None),
    "legacy": (True, 1, False, None),
}

#: Legs that run inside ``repro.guard.governed(Budget.unlimited())``: the
#: checkpoints all fire (deadline checks, meter updates) but can never
#: exhaust, isolating pure governance overhead against the "on" leg.
GOVERNED_LEGS = frozenset({"guard"})

#: The guard leg may cost at most this much over the "legacy" leg (median
#: ratio - 1) before :func:`guard_overhead_gate` fails.
GUARD_OVERHEAD_THRESHOLD = 0.05

#: The planner must beat the per-pair "legacy" leg by at least this median
#: ratio on the engine-driven suites before :func:`planner_speedup_gate`
#: passes.
PLANNER_SPEEDUP_THRESHOLD = 1.3

#: The process backend must beat the serial cached leg by at least this
#: median ratio on some engine-driven suite before
#: :func:`workers_speedup_gate` passes — judged only on multi-core
#: machines (parallel legs on one CPU measure pure overhead, so the gate
#: *skips*, loudly, instead of passing vacuously).
WORKERS_SPEEDUP_THRESHOLD = 2.0


@dataclass
class LegResult:
    """Trial statistics for one suite in one leg."""

    suite: str
    leg: str  # one of LEGS
    trials: list[float]

    @property
    def median_s(self) -> float:
        return statistics.median(self.trials)

    @property
    def iqr_s(self) -> float:
        if len(self.trials) < 2:
            return 0.0
        q1, _q2, q3 = statistics.quantiles(self.trials, n=4)
        return q3 - q1

    def to_dict(self) -> dict:
        return {
            "median_s": self.median_s,
            "iqr_s": self.iqr_s,
            "min_s": min(self.trials),
            "max_s": max(self.trials),
            "trials_s": list(self.trials),
        }


@dataclass
class SuiteResult:
    suite: str
    description: str
    legs: dict[str, LegResult] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Cache-off median over cache-on median (the cache's payoff)."""

        on = self.legs.get("on")
        off = self.legs.get("off")
        if on is None or off is None or on.median_s == 0:
            return 1.0
        return off.median_s / on.median_s

    @property
    def workers_speedup(self) -> float:
        """Serial cache-on median over workers4 median (parallel payoff)."""

        on = self.legs.get("on")
        workers = self.legs.get("workers4")
        if on is None or workers is None or workers.median_s == 0:
            return 1.0
        return on.median_s / workers.median_s

    @property
    def process_speedup(self) -> float:
        """Serial cache-on median over process-backend median."""

        on = self.legs.get("on")
        process = self.legs.get("process")
        if on is None or process is None or process.median_s == 0:
            return 1.0
        return on.median_s / process.median_s

    @property
    def guard_overhead(self) -> float:
        """Guard-leg median over its ungoverned baseline (governance cost).

        The baseline is the "legacy" leg — the guard leg analyzes through
        the same per-pair path (governed runs disable the planner) — with
        the cache-on leg as a fallback for artifacts predating "legacy".
        """

        baseline = self.legs.get("legacy") or self.legs.get("on")
        guard = self.legs.get("guard")
        if baseline is None or guard is None or baseline.median_s == 0:
            return 1.0
        return guard.median_s / baseline.median_s

    @property
    def planner_speedup(self) -> float:
        """Per-pair "legacy" median over planned cache-on median."""

        on = self.legs.get("on")
        legacy = self.legs.get("legacy")
        if on is None or legacy is None or on.median_s == 0:
            return 1.0
        return legacy.median_s / on.median_s

    def to_dict(self) -> dict:
        return {
            "description": self.description,
            "legs": {leg: result.to_dict() for leg, result in self.legs.items()},
            "cache_speedup": self.speedup,
            "workers_speedup": self.workers_speedup,
            "process_speedup": self.process_speedup,
            "guard_overhead": self.guard_overhead,
            "planner_speedup": self.planner_speedup,
        }


@dataclass
class BenchReport:
    suites: dict[str, SuiteResult]
    machine: dict
    warmup: int
    trials: int

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "machine": self.machine,
            "settings": {"warmup": self.warmup, "trials": self.trials},
            "suites": {
                name: suite.to_dict() for name, suite in sorted(self.suites.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def write(self, path) -> None:
        with open(path, "w") as sink:
            sink.write(self.to_json())


# ---------------------------------------------------------------------------
# Bench history: one summary line per run, appended across PRs
# ---------------------------------------------------------------------------


def history_entry(
    artifact: dict, *, sha: str | None = None, when: str | None = None
) -> dict:
    """One ``bench_history.jsonl`` line from a ``repro.bench/1`` artifact.

    A compressed summary — per-suite medians and speedups, the machine
    fingerprint, the git SHA and an ISO-8601 UTC timestamp — small enough
    to append on every run, rich enough to plot the perf trajectory.
    """

    suites = {}
    for name, suite in sorted(artifact.get("suites", {}).items()):
        legs = suite.get("legs", {})
        entry = {
            leg: round(data["median_s"], 6)
            for leg, data in sorted(legs.items())
            if "median_s" in data
        }
        summary = {"median_s": entry}
        for ratio in (
            "cache_speedup",
            "workers_speedup",
            "process_speedup",
            "guard_overhead",
            "planner_speedup",
        ):
            if ratio in suite:
                summary[ratio] = round(suite[ratio], 4)
        suites[name] = summary
    return {
        "schema": HISTORY_SCHEMA,
        "when": when
        or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "sha": sha if sha is not None else _git_sha(),
        "machine": artifact.get("machine", {}),
        "settings": artifact.get("settings", {}),
        "suites": suites,
    }


def append_history(
    artifact: dict, path, *, sha: str | None = None, when: str | None = None
) -> dict:
    """Append one summary line for ``artifact`` to the history file."""

    entry = history_entry(artifact, sha=sha, when=when)
    with open(path, "a") as sink:
        sink.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def _time_leg(
    suite: Suite,
    cache: bool,
    workers: int,
    planner: bool,
    warmup: int,
    trials: int,
    governed: bool = False,
    backend: str | None = None,
) -> list[float]:
    scope = (
        (lambda: _guard.governed(_guard.Budget.unlimited()))
        if governed
        else nullcontext
    )
    with scope():
        for _ in range(warmup):
            suite.run(cache, workers, planner, backend)
        times = []
        for _ in range(trials):
            started = perf_counter()
            suite.run(cache, workers, planner, backend)
            times.append(perf_counter() - started)
    return times


def run_bench(
    suites: Sequence[Suite] | None = None,
    *,
    warmup: int = 1,
    trials: int = 5,
    progress: Callable[[str], None] | None = None,
) -> BenchReport:
    """Run every suite in every leg and collect the statistics."""

    suites = list(suites) if suites is not None else default_suites()
    report = BenchReport({}, machine_fingerprint(), warmup, trials)
    for suite in suites:
        result = SuiteResult(suite.name, suite.description)
        for leg in LEGS:
            cache, workers, planner, backend = LEG_CONFIG[leg]
            if progress is not None:
                progress(
                    f"{suite.name}: leg {leg} "
                    f"({warmup} warmup + {trials} trials)"
                )
            times = _time_leg(
                suite,
                cache,
                workers,
                planner,
                warmup,
                trials,
                governed=leg in GOVERNED_LEGS,
                backend=backend,
            )
            result.legs[leg] = LegResult(suite.name, leg, times)
        report.suites[suite.name] = result
    return report


def profile_suites(suites: Sequence[Suite] | None = None) -> Profile:
    """One traced cache-on pass over the suites, as a hotspot profile."""

    suites = list(suites) if suites is not None else default_suites()
    tracer = Tracer()
    with tracing(tracer):
        for suite in suites:
            suite.run(True)
    return Profile.from_tracer(tracer)


def guard_overhead_gate(
    report: BenchReport,
    *,
    suite: str = "corpus",
    threshold: float = GUARD_OVERHEAD_THRESHOLD,
) -> tuple[bool, str]:
    """Assert the guard leg costs under ``threshold`` on ``suite``.

    Returns ``(ok, message)``.  A missing suite or leg passes trivially
    (the gate only judges what actually ran — the compare gate flags
    dropped legs separately).
    """

    result = report.suites.get(suite)
    if result is None or "guard" not in result.legs or (
        "legacy" not in result.legs and "on" not in result.legs
    ):
        return True, f"guard overhead gate: skipped ({suite} not benchmarked)"
    overhead = result.guard_overhead - 1.0
    ok = overhead < threshold
    verdict = "PASS" if ok else "FAIL"
    return ok, (
        f"guard overhead gate: {verdict} ({suite} governed run costs "
        f"{overhead:+.1%} vs ungoverned; budget +{threshold:.0%})"
    )


def planner_speedup_gate(
    report: BenchReport,
    *,
    suites: Sequence[str] = ("corpus", "cholsky"),
    threshold: float = PLANNER_SPEEDUP_THRESHOLD,
) -> tuple[bool, str]:
    """Assert the planner beats the per-pair path on the engine suites.

    Returns ``(ok, message)``.  Suites missing the "legacy" or "on" leg
    are skipped (the gate only judges what actually ran); the symbolic
    suite never counts, since it does not drive the analysis engine.
    """

    judged: list[str] = []
    ok = True
    for name in suites:
        result = report.suites.get(name)
        if (
            result is None
            or "legacy" not in result.legs
            or "on" not in result.legs
        ):
            continue
        speedup = result.planner_speedup
        judged.append(f"{name} {speedup:.2f}x")
        if speedup < threshold:
            ok = False
    if not judged:
        return True, "planner speedup gate: skipped (no suite benchmarked)"
    verdict = "PASS" if ok else "FAIL"
    return ok, (
        f"planner speedup gate: {verdict} ({', '.join(judged)}; "
        f"floor {threshold:.2f}x vs per-pair path)"
    )


def workers_speedup_gate(
    report: BenchReport,
    *,
    suites: Sequence[str] = ("corpus", "cholsky"),
    threshold: float = WORKERS_SPEEDUP_THRESHOLD,
    min_cpus: int = 2,
) -> tuple[bool, str]:
    """Assert the process backend actually scales on a multi-core host.

    Returns ``(ok, message)``.  The decision records the machine's CPU
    count, taken from the report's own fingerprint: with fewer than
    ``min_cpus`` CPUs a parallel leg measures pure dispatch overhead
    (BENCH_omega.json's historical 0.86x "speedup" was recorded with
    ``cpus: 1``), so the gate *skips with a logged reason* — it never
    passes vacuously where it could not have failed.  On multi-core, the
    best process-leg speedup across the engine suites must clear
    ``threshold``.
    """

    cpus = int(report.machine.get("cpus", 1) or 1)
    if cpus < min_cpus:
        return True, (
            f"workers speedup gate: SKIPPED (machine has {cpus} cpu(s); "
            f"parallel legs measure overhead below {min_cpus} — "
            "rerun on a multi-core host to judge scaling)"
        )
    judged: list[str] = []
    best = 0.0
    for name in suites:
        result = report.suites.get(name)
        if result is None or "process" not in result.legs or (
            "on" not in result.legs
        ):
            continue
        speedup = result.process_speedup
        judged.append(f"{name} {speedup:.2f}x")
        best = max(best, speedup)
    if not judged:
        return True, "workers speedup gate: skipped (no process leg benchmarked)"
    ok = best >= threshold
    verdict = "PASS" if ok else "FAIL"
    return ok, (
        f"workers speedup gate: {verdict} ({', '.join(judged)}; "
        f"best process-backend speedup must reach {threshold:.2f}x "
        f"on {cpus} cpus)"
    )


def render_report(report: BenchReport) -> str:
    """The human-readable per-suite table (``results/bench_omega.txt``)."""

    lines = [
        "Omega benchmark harness "
        f"(warmup={report.warmup}, trials={report.trials}, median/IQR)",
        f"  machine: {report.machine['platform']}, "
        f"python {report.machine['python']} "
        f"({report.machine['implementation']}), "
        f"{report.machine['cpus']} cpus",
        "",
        f"  {'suite':<12} {'leg':<8} {'median':>10} {'iqr':>10}"
        f" {'min':>10} {'max':>10}",
        "  " + "-" * 64,
    ]
    for name, suite in sorted(report.suites.items()):
        for leg in LEGS:
            result = suite.legs.get(leg)
            if result is None:
                continue
            lines.append(
                f"  {name:<12} {leg:<8} {result.median_s:>9.4f}s"
                f" {result.iqr_s:>9.4f}s {min(result.trials):>9.4f}s"
                f" {max(result.trials):>9.4f}s"
            )
        lines.append(f"  {name:<12} cache speedup: {suite.speedup:.2f}x")
        if "workers4" in suite.legs:
            lines.append(
                f"  {name:<12} workers speedup: {suite.workers_speedup:.2f}x"
            )
        if "process" in suite.legs:
            lines.append(
                f"  {name:<12} process speedup: {suite.process_speedup:.2f}x"
            )
        if "guard" in suite.legs:
            lines.append(
                f"  {name:<12} guard overhead: "
                f"{suite.guard_overhead - 1.0:+.1%}"
            )
        if "legacy" in suite.legs:
            lines.append(
                f"  {name:<12} planner speedup: {suite.planner_speedup:.2f}x"
            )
    return "\n".join(lines) + "\n"
