"""Service benchmark: the daemon's latency and persistence story.

Three legs over one shared store file, all driven straight through
:meth:`repro.serve.ServeApp.handle` (the transport adds constant cost;
what this benchmark guards is the service layer):

``cold``
    A fresh app over a fresh store.  Every solver query misses both
    cache tiers and is written through to sqlite.
``warm_restart``
    The app is closed and rebuilt over the *same* store file — a
    simulated daemon restart with empty in-memory tiers.  The
    persistent tier must answer (``store_hits > 0``) and every response
    must be bit-identical to a direct :func:`repro.analysis.analyze`
    run of the same program.
``concurrent``
    N client threads submit the corpus through the shared app at once;
    admission may shed load (429s are counted, not failures) but no
    response may be an error and the app must survive.

``python -m repro serve-bench`` writes the ``repro.servebench/1``
artifact to ``results/serve_bench.json`` and exits nonzero when the
warm leg misses the persistent tier or any answer diverges.
"""

from __future__ import annotations

import pathlib
import statistics
import tempfile
import threading
import time

from ..analysis import AnalysisOptions, analyze
from ..ir import parse
from ..reporting import result_to_dict

__all__ = [
    "SERVE_BENCH_SCHEMA",
    "BENCH_PROGRAMS",
    "render_serve_bench",
    "run_serve_bench",
]

#: Schema tag of the artifact.
SERVE_BENCH_SCHEMA = "repro.servebench/1"

#: The submission corpus: small kernels spanning the analysis shapes
#: (loop-carried recurrence, wavefront, kill/overwrite, symbolic upper
#: bounds).  Sources live here because the service consumes program
#: *text*, not parsed :class:`~repro.ir.ast.Program` objects.
BENCH_PROGRAMS: dict[str, str] = {
    "recurrence": (
        "for i := 1 to n do {\n"
        "  a(i) := a(i-1) + b(i)\n"
        "}\n"
    ),
    "wavefront": (
        "for i := 1 to n do {\n"
        "  for j := 1 to n do {\n"
        "    w(i, j) := w(i-1, j) + w(i, j-1)\n"
        "  }\n"
        "}\n"
    ),
    "overwrite": (
        "for i := 1 to n do {\n"
        "  t(i) := b(i) + 1\n"
        "}\n"
        "for i := 1 to n do {\n"
        "  t(i) := c(i) * 2\n"
        "}\n"
        "for i := 1 to n do {\n"
        "  d(i) := t(i)\n"
        "}\n"
    ),
    "triangular": (
        "for i := 1 to n do {\n"
        "  for j := 1 to i do {\n"
        "    l(i, j) := l(j, j) + x(i)\n"
        "  }\n"
        "}\n"
    ),
}


def _comparable(result_dict: dict) -> dict:
    """The configuration-independent projection of one result dict.

    A direct ungoverned run reports ``degradations: None`` where the
    service's governed (but undisturbed) run reports ``[]``; everything
    else must match bit-for-bit.
    """

    found = dict(result_dict)
    found.pop("degradations", None)
    return found


def _submit(app, name: str, source: str) -> tuple[float, int, dict]:
    """One analyze submission; ``(seconds, http_status, envelope)``."""

    started = time.perf_counter()
    status, envelope = app.handle(
        {"op": "analyze", "name": name, "program": source}
    )
    return time.perf_counter() - started, status, envelope


def _latency_summary(seconds: list[float]) -> dict:
    ordered = sorted(seconds)
    return {
        "count": len(ordered),
        "median_ms": round(statistics.median(ordered) * 1000.0, 3),
        "max_ms": round(ordered[-1] * 1000.0, 3),
        "total_ms": round(sum(ordered) * 1000.0, 3),
    }


def run_serve_bench(
    *,
    trials: int = 3,
    clients: int = 4,
    store_dir=None,
    programs: dict[str, str] | None = None,
    progress=None,
) -> dict:
    """Run all three legs; return the ``repro.servebench/1`` artifact."""

    from ..serve import ServeApp

    def tell(text: str) -> None:
        if progress is not None:
            progress(text)

    if programs is None:
        programs = BENCH_PROGRAMS
    cleanup = None
    if store_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
        store_dir = pathlib.Path(cleanup.name)
    else:
        store_dir = pathlib.Path(store_dir)
        store_dir.mkdir(parents=True, exist_ok=True)
    store_path = store_dir / "serve_bench_store.db"
    if store_path.exists():
        store_path.unlink()

    artifact: dict = {
        "schema": SERVE_BENCH_SCHEMA,
        "settings": {
            "trials": trials,
            "clients": clients,
            "programs": sorted(programs),
        },
        "legs": {},
    }

    try:
        # Reference answers: direct in-process analysis, no service, no
        # persistence, planner at its default.  This is the ground truth
        # the restarted service must reproduce from its store.
        reference = {
            name: _comparable(
                result_to_dict(analyze(parse(source, name), AnalysisOptions()))
            )
            for name, source in programs.items()
        }

        tell("cold leg (fresh store)")
        app = ServeApp(store_path=store_path)
        cold_latencies: list[float] = []
        first_pass: list[float] = []
        for trial in range(trials):
            for name, source in programs.items():
                seconds, status, envelope = _submit(app, name, source)
                cold_latencies.append(seconds)
                if trial == 0:
                    first_pass.append(seconds)
                if envelope["status"] not in ("ok", "degraded"):
                    raise RuntimeError(
                        f"cold leg: {name} answered {envelope['status']}"
                    )
        cold_store = app.store.stats()
        artifact["legs"]["cold"] = {
            "latency": _latency_summary(cold_latencies),
            "first_pass": _latency_summary(first_pass),
            "store_hits": cold_store["hits"],
            "store_writes": cold_store["writes"],
            "responses": dict(app.responses),
        }
        app.close()  # the simulated restart: all in-memory tiers die here

        tell("warm leg (restarted app, same store)")
        app = ServeApp(store_path=store_path)
        warm_latencies: list[float] = []
        mismatches: list[str] = []
        for name, source in programs.items():
            seconds, status, envelope = _submit(app, name, source)
            warm_latencies.append(seconds)
            if envelope["status"] not in ("ok", "degraded"):
                mismatches.append(name)
                continue
            if _comparable(envelope["result"]) != reference[name]:
                mismatches.append(name)
        warm_store = app.store.stats()
        artifact["legs"]["warm_restart"] = {
            "latency": _latency_summary(warm_latencies),
            "store_hits": warm_store["hits"],
            "store_writes": warm_store["writes"],
            "responses": dict(app.responses),
        }
        artifact["identical"] = not mismatches
        artifact["mismatches"] = mismatches

        tell(f"concurrent leg ({clients} clients)")
        outcomes: dict[str, int] = {}
        outcome_lock = threading.Lock()

        def client(_index: int) -> None:
            for name, source in programs.items():
                _, _, envelope = _submit(app, name, source)
                with outcome_lock:
                    status = envelope["status"]
                    outcomes[status] = outcomes.get(status, 0) + 1

        threads = [
            threading.Thread(target=client, args=(index,), daemon=True)
            for index in range(clients)
        ]
        concurrent_started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        artifact["legs"]["concurrent"] = {
            "clients": clients,
            "submitted": clients * len(programs),
            "outcomes": dict(sorted(outcomes.items())),
            "wall_ms": round(
                (time.perf_counter() - concurrent_started) * 1000.0, 3
            ),
            "errors": outcomes.get("error", 0),
        }
        app.close()
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    # Later cold trials hit the in-memory result cache, so the honest
    # restart comparison is cold *first pass* (everything misses) vs the
    # warm pass (persistent tier answers).
    cold_median = artifact["legs"]["cold"]["first_pass"]["median_ms"]
    warm_median = artifact["legs"]["warm_restart"]["latency"]["median_ms"]
    if warm_median > 0:
        artifact["restart_speedup"] = round(cold_median / warm_median, 4)
    return artifact


def render_serve_bench(artifact: dict) -> str:
    """The human-readable leg table for one artifact."""

    lines = [
        "serve bench "
        f"({artifact['schema']}, {len(artifact['settings']['programs'])} "
        f"programs, {artifact['settings']['trials']} trials)",
        f"{'leg':<14} {'median ms':>10} {'max ms':>10} "
        f"{'store hits':>11} {'store writes':>13}",
    ]
    for leg in ("cold", "warm_restart"):
        data = artifact["legs"][leg]
        lines.append(
            f"{leg:<14} {data['latency']['median_ms']:>10.3f} "
            f"{data['latency']['max_ms']:>10.3f} "
            f"{data['store_hits']:>11} {data['store_writes']:>13}"
        )
    concurrent = artifact["legs"]["concurrent"]
    outcomes = ", ".join(
        f"{status}={count}"
        for status, count in concurrent["outcomes"].items()
    )
    lines.append(
        f"{'concurrent':<14} clients={concurrent['clients']} "
        f"wall={concurrent['wall_ms']:.1f}ms {outcomes}"
    )
    verdict = "identical" if artifact.get("identical") else (
        "DIVERGED: " + ", ".join(artifact.get("mismatches", []))
    )
    lines.append(
        "warm-restart answers vs direct analyze(): " + verdict
    )
    if "restart_speedup" in artifact:
        lines.append(
            f"restart speedup (cold/warm median): "
            f"{artifact['restart_speedup']:.2f}x"
        )
    return "\n".join(lines)
