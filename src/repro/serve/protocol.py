"""The serve wire protocol: ``repro.serve/1`` request/response envelopes.

One JSON object per request, one per response, transport-independent
(the HTTP and unix-socket fronts both speak exactly this).  The
protocol's central invariant is **degrade, don't die**: an analysis
request never yields a transport-level failure for analysis-level
reasons.  The response ``status`` carries the outcome in-band:

``ok``
    The analysis completed exactly.
``degraded``
    The analysis completed under its budget/faults with sound
    conservative substitutions; the reported dependences are a superset
    of the exact answer and ``degradations`` lists every substitution.
``invalid``
    The request itself was malformed (bad JSON, unknown op, unparsable
    program) — the only client-error case, mapped to HTTP 400.
``rejected``
    Admission control shed the request (queue full, drain in progress,
    injected request-drop).  ``retry_after_ms`` tells the client when to
    come back; mapped to HTTP 429.
``error``
    An unexpected internal failure.  Still HTTP 200 — the daemon
    answered, honestly, with a structured error — and the daemon itself
    keeps running.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "PROTOCOL",
    "ANALYZE_OPTION_FIELDS",
    "ProtocolError",
    "validate_request",
    "response",
    "rejected",
    "invalid",
]

#: Schema tag carried by every response.
PROTOCOL = "repro.serve/1"

#: Analysis option fields a request may set.  Execution configuration
#: (workers, backend, cache sizing) belongs to the server, not the
#: request; the degradation policy is pinned to "degrade" because a
#: raise-policy service would 500 — the one thing this daemon never does.
ANALYZE_OPTION_FIELDS = frozenset(
    {
        "extended",
        "refine",
        "cover",
        "kill",
        "terminate",
        "partial_refine",
        "extend_all_kinds",
        "input_deps",
        "audit",
        "assertions",
    }
)

#: Ops a request may name.
OPS = ("ping", "stats", "analyze", "query", "drain")

_BOOL_FIELDS = ANALYZE_OPTION_FIELDS - {"assertions"}


class ProtocolError(ValueError):
    """A malformed request (mapped to status "invalid" / HTTP 400)."""


def validate_request(payload: Any) -> dict:
    """Check one decoded request envelope, returning it normalized.

    Raises :class:`ProtocolError` with a client-readable message on any
    shape violation; never raises anything else.
    """

    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(OPS)})"
        )
    normalized: dict = {"op": op}
    request_id = payload.get("request_id")
    if request_id is not None and not isinstance(request_id, str):
        raise ProtocolError("request_id must be a string")
    normalized["request_id"] = request_id
    if op in ("analyze", "query"):
        program = payload.get("program")
        if not isinstance(program, str) or not program.strip():
            raise ProtocolError(f"op {op!r} needs a non-empty 'program' string")
        normalized["program"] = program
        name = payload.get("name", "request")
        if not isinstance(name, str):
            raise ProtocolError("name must be a string")
        normalized["name"] = name
        deadline = payload.get("deadline_ms")
        if deadline is not None:
            if not isinstance(deadline, (int, float)) or deadline <= 0:
                raise ProtocolError("deadline_ms must be a positive number")
        normalized["deadline_ms"] = deadline
        normalized["options"] = _validate_options(payload.get("options"))
    if op == "query":
        pair = payload.get("pair")
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not all(isinstance(end, str) for end in pair)
        ):
            raise ProtocolError("op 'query' needs a pair: [SRC, DST]")
        normalized["pair"] = tuple(pair)
    return normalized


def _validate_options(options: Any) -> dict:
    if options is None:
        return {}
    if not isinstance(options, dict):
        raise ProtocolError("options must be a JSON object")
    unknown = set(options) - ANALYZE_OPTION_FIELDS
    if unknown:
        raise ProtocolError(
            f"unknown option(s): {', '.join(sorted(unknown))} "
            f"(allowed: {', '.join(sorted(ANALYZE_OPTION_FIELDS))})"
        )
    checked: dict = {}
    for field in _BOOL_FIELDS & set(options):
        if not isinstance(options[field], bool):
            raise ProtocolError(f"option {field!r} must be a boolean")
        checked[field] = options[field]
    if "assertions" in options:
        assertions = options["assertions"]
        if not isinstance(assertions, list) or not all(
            isinstance(a, str) for a in assertions
        ):
            raise ProtocolError("option 'assertions' must be a list of strings")
        checked["assertions"] = list(assertions)
    return checked


def response(status: str, request_id: str | None = None, **body) -> dict:
    """One response envelope (``schema`` and ``status`` always present)."""

    envelope = {"schema": PROTOCOL, "status": status, "request_id": request_id}
    envelope.update(body)
    return envelope


def rejected(
    request_id: str | None,
    reason: str,
    retry_after_ms: float,
) -> dict:
    return response(
        "rejected",
        request_id,
        reason=reason,
        retry_after_ms=retry_after_ms,
    )


def invalid(request_id: str | None, message: str) -> dict:
    return response("invalid", request_id, error=message)


#: HTTP status per response status — the full mapping the transports use.
#: Analysis outcomes (ok / degraded / error) are all 200: the service
#: answered.  Only protocol misuse is 4xx, and nothing is ever 5xx.
HTTP_STATUS = {
    "ok": 200,
    "degraded": 200,
    "error": 200,
    "invalid": 400,
    "rejected": 429,
}
