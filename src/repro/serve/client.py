"""A minimal client for the serve protocol (stdlib only).

Used by the CLI smoke paths, the serve bench and the tests; real
deployments can speak the protocol with any HTTP client.  The unix
variant subclasses :class:`http.client.HTTPConnection` with a socket
override — same wire bytes, different transport.
"""

from __future__ import annotations

import http.client
import json
import socket

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A transport-level client failure (connection refused, bad JSON)."""


class _UnixConnection(http.client.HTTPConnection):
    def __init__(self, path: str, timeout: float):
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServeClient:
    """One request per call; connections are not reused (keep it dumb)."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int | None = None,
        unix_socket=None,
        timeout: float = 30.0,
    ):
        if (port is None) == (unix_socket is None):
            raise ValueError("give exactly one of port or unix_socket")
        self.host = host
        self.port = port
        self.unix_socket = str(unix_socket) if unix_socket else None
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        if self.unix_socket is not None:
            return _UnixConnection(self.unix_socket, self.timeout)
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def request(
        self, payload: dict, *, path: str = "/", method: str = "POST"
    ) -> tuple[int, dict]:
        """``(http_status, response envelope)`` for one protocol request."""

        connection = self._connection()
        try:
            body = json.dumps(payload).encode("utf-8") if method == "POST" else None
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            raw = connection.getresponse()
            text = raw.read().decode("utf-8")
            try:
                envelope = json.loads(text)
            except ValueError as failure:
                raise ServeError(
                    f"non-JSON response ({raw.status}): {text[:200]}"
                ) from failure
            return raw.status, envelope
        except (OSError, http.client.HTTPException) as failure:
            raise ServeError(f"transport failure: {failure}") from failure
        finally:
            connection.close()

    # -- convenience wrappers -------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})[1]

    def stats(self) -> dict:
        return self.request({"op": "stats"})[1]

    def drain(self) -> dict:
        return self.request({"op": "drain"})[1]

    def healthz(self) -> tuple[int, dict]:
        return self.request({}, path="/healthz", method="GET")

    def readyz(self) -> tuple[int, dict]:
        return self.request({}, path="/readyz", method="GET")

    def analyze(
        self,
        program: str,
        *,
        name: str = "request",
        options: dict | None = None,
        deadline_ms: float | None = None,
        request_id: str | None = None,
    ) -> tuple[int, dict]:
        payload: dict = {"op": "analyze", "program": program, "name": name}
        if options:
            payload["options"] = options
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if request_id is not None:
            payload["request_id"] = request_id
        return self.request(payload)

    def query(
        self,
        program: str,
        pair: tuple[str, str],
        *,
        name: str = "request",
        options: dict | None = None,
    ) -> tuple[int, dict]:
        payload: dict = {
            "op": "query",
            "program": program,
            "name": name,
            "pair": list(pair),
        }
        if options:
            payload["options"] = options
        return self.request(payload)
