"""The daemon: HTTP and unix-socket fronts over one :class:`ServeApp`.

``python -m repro serve`` builds a :class:`Daemon`, which owns the app
and up to two listeners — a TCP :class:`ThreadingHTTPServer` and an
``AF_UNIX`` variant speaking the same HTTP — and runs them until a
signal arrives.  Shutdown is a **graceful drain**: SIGTERM/SIGINT flips
readiness off (load balancers stop routing), in-flight requests finish
(``block_on_close`` joins the handler threads), the solver store
flushes, and only then does the process exit.  A second signal forces
immediate shutdown.

Endpoints (both transports):

=================  =====================================================
``GET /healthz``   liveness — 200 while the process serves at all
``GET /readyz``    readiness — 200 until drain starts, then 503
``GET /stats``     the full layered stats snapshot, as JSON
``POST /analyze``  an ``op: analyze`` request (op filled in if missing)
``POST /query``    an ``op: query`` request
``POST /drain``    begin draining (also available as an op)
``POST /``         a raw protocol envelope (any op)
=================  =====================================================
"""

from __future__ import annotations

import json
import pathlib
import signal
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .app import ServeApp
from .protocol import invalid

__all__ = ["Daemon", "build_http_server", "build_unix_server"]

#: Cap on request bodies (a corpus program is a few KB; 8 MB is beyond
#: generous and bounds memory per connection).
MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """One request — translation between HTTP and the protocol layer."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    # The app is attached to the server object by the builders below.
    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the ledger and metrics are the access log

    def address_string(self) -> str:
        # AF_UNIX peers have no (host, port); never reverse-resolve.
        if isinstance(self.client_address, (bytes, str)) or not self.client_address:
            return "unix"
        return str(self.client_address[0])

    def _send(self, status: int, payload: dict, retry_after_ms=None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_ms is not None:
            # HTTP Retry-After is whole seconds; round up, floor 1.
            self.send_header(
                "Retry-After", str(max(1, int(retry_after_ms / 1000.0 + 0.999)))
            )
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, payload) -> None:
        status, envelope = self.app.handle(payload)
        retry = envelope.get("retry_after_ms") if status == 429 else None
        self._send(status, envelope, retry)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._send(200, {"status": "ok", "alive": True})
        elif self.path == "/readyz":
            ready = self.app.ready()
            self._send(
                200 if ready else 503, {"status": "ok", "ready": ready}
            )
        elif self.path == "/stats":
            self._dispatch({"op": "stats"})
        else:
            self._send(404, invalid(None, f"unknown path {self.path}"))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send(400, invalid(None, "bad or oversized Content-Length"))
            return
        raw = self.rfile.read(length) if length else b"{}"
        op = {"/analyze": "analyze", "/query": "query", "/drain": "drain"}.get(
            self.path
        )
        if op is None and self.path != "/":
            self._send(404, invalid(None, f"unknown path {self.path}"))
            return
        try:
            payload = json.loads(raw.decode("utf-8")) if raw.strip() else {}
        except (ValueError, UnicodeDecodeError) as failure:
            self._send(400, invalid(None, f"request is not JSON: {failure}"))
            return
        if op is not None and isinstance(payload, dict):
            payload.setdefault("op", op)
        self._dispatch(payload)


class _HTTPServer(ThreadingHTTPServer):
    # Graceful drain: server_close() joins the non-daemon handler
    # threads, so in-flight requests finish before the process exits.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True


class _UnixHTTPServer(_HTTPServer):
    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        path = pathlib.Path(self.server_address)
        if path.exists():
            path.unlink()
        path.parent.mkdir(parents=True, exist_ok=True)
        super().server_bind()

    def client_address_string(self) -> str:  # pragma: no cover - cosmetic
        return "unix"


def build_http_server(app: ServeApp, host: str, port: int) -> _HTTPServer:
    """A TCP front bound to ``host:port`` (port 0 picks a free port)."""

    server = _HTTPServer((host, port), _Handler)
    server.app = app  # type: ignore[attr-defined]
    return server


def build_unix_server(app: ServeApp, path) -> _UnixHTTPServer:
    """An ``AF_UNIX`` front bound to a socket file (stale files replaced)."""

    server = _UnixHTTPServer(str(path), _Handler)
    server.app = app  # type: ignore[attr-defined]
    return server


class Daemon:
    """The app plus its listeners, with lifecycle management."""

    def __init__(
        self,
        app: ServeApp,
        *,
        host: str | None = "127.0.0.1",
        port: int = 8177,
        unix_socket=None,
    ):
        self.app = app
        self.servers: list[_HTTPServer] = []
        self.unix_socket = (
            pathlib.Path(unix_socket) if unix_socket is not None else None
        )
        if host is not None:
            self.servers.append(build_http_server(app, host, port))
        if self.unix_socket is not None:
            self.servers.append(build_unix_server(app, self.unix_socket))
        if not self.servers:
            raise ValueError("daemon needs a TCP host or a unix socket")
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Lock()
        self.stopped = threading.Event()

    @property
    def port(self) -> int | None:
        """The bound TCP port (after start), or None for unix-only."""

        for server in self.servers:
            if server.address_family != socket.AF_UNIX:
                return server.server_address[1]
        return None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Serve on background threads (the test/embedding entry)."""

        for server in self.servers:
            thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.05},
                name=f"repro-serve-{server.server_address}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Drain and shut down (idempotent, thread-safe)."""

        if not self._stopping.acquire(blocking=False):
            self.stopped.wait()
            return
        try:
            self.app.drain()
            for server in self.servers:
                # shutdown() stops the accept loop; server_close() joins
                # the in-flight handler threads (block_on_close).
                server.shutdown()
                server.server_close()
            for thread in self._threads:
                thread.join(timeout=10.0)
            self.app.close()
            if self.unix_socket is not None and self.unix_socket.exists():
                self.unix_socket.unlink()
        finally:
            self.stopped.set()
            self._stopping.release()

    def run(self, install_signals: bool = True) -> None:
        """Foreground mode: serve until SIGTERM/SIGINT, then drain."""

        stop_requested = threading.Event()

        def on_signal(signum, frame):  # noqa: ARG001 - signal signature
            if stop_requested.is_set():
                raise SystemExit(1)  # second signal: force exit
            stop_requested.set()

        if install_signals:
            signal.signal(signal.SIGTERM, on_signal)
            signal.signal(signal.SIGINT, on_signal)
        self.start()
        try:
            while not stop_requested.wait(timeout=0.2):
                pass
        finally:
            self.stop()
