"""The serve application: transport-independent request handling.

:class:`ServeApp` owns everything the daemon shares across requests —
one serial :class:`~repro.solver.SolverService` over one
:class:`~repro.omega.cache.SolverCache` backed by the persistent
:class:`~repro.omega.store.PersistentStore`, the admission controller,
a server-lifetime metrics registry, a bounded full-result cache and the
per-program fingerprint index — and exposes exactly one entry point,
:meth:`handle`, which both the HTTP and unix-socket fronts call.

Degrade-don't-die, layer by layer:

1. Malformed requests → status ``invalid`` (the only 4xx).
2. Admission (queue full / drain / injected request-drop) → ``rejected``
   with a retry-after hint.
3. Analysis under per-request deadline governance (policy pinned to
   ``degrade``) → ``ok`` or ``degraded``; degraded responses carry the
   full substitution provenance and stay a superset of the exact
   answer.
4. Anything unexpected → status ``error`` in-band.  The daemon never
   turns an analysis problem into a transport failure and never exits.

Every request gets a ``repro.run/1`` ledger record (kind ``serve``)
when a ledger is configured, a ``serve.request_seconds`` histogram
observation and ``serve.*`` counters in the server registry.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from contextlib import ExitStack

from ..analysis import AnalysisOptions, analyze, parse_assertion
from ..guard import faults as _faults
from ..ir import IRError, parse
from ..obs import (
    MetricsRegistry,
    RunContext,
    append_run,
    collecting,
    new_run_id,
    run_context,
    run_record,
)
from ..obs import metrics as _metrics
from ..omega.cache import SolverCache
from ..omega.store import PersistentStore
from ..reporting import result_to_dict, why_records
from ..solver import SolverService
from .admission import AdmissionController
from .incremental import diff_fingerprints, pair_fingerprints
from .protocol import (
    HTTP_STATUS,
    ProtocolError,
    invalid,
    rejected,
    response,
    validate_request,
)

__all__ = ["ServeApp", "DEFAULT_DEADLINE_MS"]

#: Per-request wall-clock budget when the request names none.  Generous
#: for the corpus (whole-program analyses run in tens of milliseconds)
#: yet bounded, so a pathological submission degrades instead of
#: wedging a worker slot.
DEFAULT_DEADLINE_MS = 10_000.0

#: Injected ``slow-client`` stall, seconds (bounded: chaos must never
#: look like a hang).
SLOW_CLIENT_STALL_S = 0.05


class ServeApp:
    """Shared state + request dispatch for the analysis service."""

    def __init__(
        self,
        *,
        store_path=None,
        ledger_path=None,
        max_inflight: int = 4,
        queue_depth: int = 16,
        queue_timeout_s: float = 1.0,
        default_deadline_ms: float = DEFAULT_DEADLINE_MS,
        max_deadline_ms: float | None = None,
        result_cache_size: int = 64,
        cache_size: int | None = None,
    ):
        self.store = (
            PersistentStore(store_path) if store_path is not None else None
        )
        self.cache = SolverCache(cache_size, store=self.store)
        # One *serial* service: the canonical-form cache is the layer the
        # persistent tier hangs off, and serial mode is the one that
        # consults it.  Concurrency comes from handler threads sharing
        # the service (the cache is lock-protected); request isolation
        # comes from per-request governors, not per-request services.
        self.service = SolverService(workers=1, cache=True, shared_cache=self.cache)
        self.registry = MetricsRegistry()
        self.admission = AdmissionController(
            max_inflight=max_inflight,
            queue_depth=queue_depth,
            queue_timeout_s=queue_timeout_s,
        )
        self.ledger_path = ledger_path
        self.default_deadline_ms = default_deadline_ms
        self.max_deadline_ms = max_deadline_ms
        self.result_cache_size = result_cache_size
        self.run_id = new_run_id()
        self.started_at = time.time()
        self.draining = threading.Event()
        self._result_cache: OrderedDict = OrderedDict()
        self._result_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._request_counter = 0
        self.requests = 0
        self.responses: dict[str, int] = {
            "ok": 0,
            "degraded": 0,
            "error": 0,
            "invalid": 0,
            "rejected": 0,
        }
        self.result_cache_hits = 0
        self.faults_dropped = 0
        self.faults_slowed = 0

    # -- lifecycle -------------------------------------------------------

    def drain(self) -> None:
        """Stop admitting new requests (readiness goes false)."""

        self.draining.set()

    def ready(self) -> bool:
        return not self.draining.is_set()

    def close(self) -> None:
        self.service.close()
        if self.store is not None:
            self.store.close()

    # -- dispatch --------------------------------------------------------

    def handle(self, payload) -> tuple[int, dict]:
        """One request in, ``(http_status, response envelope)`` out.

        ``payload`` is the decoded JSON body (any shape) or raw bytes.
        This method never raises.
        """

        started = time.monotonic()
        with ExitStack() as stack:
            stack.enter_context(collecting(self.registry))
            self.requests += 1
            _metrics.inc("serve.requests")
            if isinstance(payload, (bytes, bytearray)):
                try:
                    payload = json.loads(payload.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as failure:
                    return self._done(
                        started, invalid(None, f"request is not JSON: {failure}")
                    )
            try:
                request = validate_request(payload)
            except ProtocolError as failure:
                request_id = None
                if isinstance(payload, dict):
                    candidate = payload.get("request_id")
                    if isinstance(candidate, str):
                        request_id = candidate
                return self._done(started, invalid(request_id, str(failure)))
            request_id = request["request_id"] or self._next_request_id()
            op = request["op"]

            # Cheap introspection ops bypass admission entirely: health
            # checks must answer while the queue is saturated.
            if op == "ping":
                return self._done(
                    started,
                    response("ok", request_id, ready=self.ready()),
                )
            if op == "stats":
                return self._done(
                    started, response("ok", request_id, stats=self.stats())
                )
            if op == "drain":
                self.drain()
                return self._done(
                    started, response("ok", request_id, draining=True)
                )

            if self.draining.is_set():
                return self._done(
                    started,
                    rejected(
                        request_id,
                        "draining",
                        self.admission.retry_after_ms(),
                    ),
                )

            plan = _faults.current_plan()
            if plan is not None and plan.maybe_serve(
                "serve.request", ("request-drop",)
            ):
                self.faults_dropped += 1
                _metrics.inc("serve.dropped")
                return self._done(
                    started,
                    rejected(
                        request_id,
                        "request-drop (injected)",
                        self.admission.retry_after_ms(),
                    ),
                )

            ticket = self.admission.admit()
            if ticket is None:
                return self._done(
                    started,
                    rejected(
                        request_id,
                        "overloaded",
                        self.admission.retry_after_ms(),
                    ),
                )
            with ticket:
                stack.enter_context(
                    run_context(
                        RunContext(run_id=self.run_id, request_id=request_id)
                    )
                )
                envelope = self._analysis_op(request, request_id)
            if plan is not None and plan.maybe_serve(
                "serve.respond", ("slow-client",)
            ):
                # A stalled client holds its connection, not the service:
                # the slot is already released, so the stall costs only
                # this response's latency.
                self.faults_slowed += 1
                _metrics.inc("serve.slow_clients")
                time.sleep(SLOW_CLIENT_STALL_S)
            return self._done(started, envelope, note_latency=True)

    def _done(
        self, started: float, envelope: dict, *, note_latency: bool = False
    ) -> tuple[int, dict]:
        elapsed = time.monotonic() - started
        envelope.setdefault("timing_ms", round(elapsed * 1000.0, 3))
        status = envelope["status"]
        self.responses[status] = self.responses.get(status, 0) + 1
        _metrics.observe("serve.request_seconds", elapsed)
        if status == "ok":
            _metrics.inc("serve.responses.ok")
        elif status == "degraded":
            _metrics.inc("serve.responses.degraded")
        elif status == "error":
            _metrics.inc("serve.responses.error")
        elif status == "invalid":
            _metrics.inc("serve.responses.invalid")
        if note_latency:
            self.admission.note_latency(elapsed)
        return HTTP_STATUS[status], envelope

    def _next_request_id(self) -> str:
        with self._counter_lock:
            self._request_counter += 1
            return f"{self.run_id}-r{self._request_counter}"

    # -- the analysis ops ------------------------------------------------

    def _analysis_op(self, request: dict, request_id: str) -> dict:
        """analyze / query, with the full degradation shield around it."""

        try:
            program = parse(request["program"], request["name"])
        except IRError as failure:
            return invalid(request_id, f"unparsable program: {failure}")
        except Exception as failure:  # noqa: BLE001 - invalid, not fatal
            return invalid(request_id, f"unparsable program: {failure}")

        try:
            options, options_key = self._build_options(request)
        except ValueError as failure:
            return invalid(request_id, str(failure))

        source_digest = hashlib.sha256(
            request["program"].encode()
        ).hexdigest()

        # The fingerprint diff describes *this* submission against the
        # previous one, so it runs before (and overrides) any cached
        # full-result replay.
        incremental = self._incremental(
            program, request["name"], source_digest, options_key
        )

        if request["op"] == "analyze":
            cached = self._result_cache_get((source_digest, options_key))
            if cached is not None:
                self.result_cache_hits += 1
                _metrics.inc("serve.result_cache.hits")
                envelope = dict(cached)
                envelope["request_id"] = request_id
                envelope["result_cache"] = "hit"
                if incremental is not None:
                    envelope["incremental"] = incremental
                return envelope
            _metrics.inc("serve.result_cache.misses")

        try:
            result = analyze(program, options)
        except Exception as failure:  # noqa: BLE001 - in-band, never a 500
            return response(
                "error",
                request_id,
                error=f"{type(failure).__name__}: {failure}",
                program=program.name,
            )

        degraded = result.degraded()
        status = "degraded" if degraded else "ok"
        body: dict = {
            "program": program.name,
            "result": result_to_dict(result),
            "degradations": [
                {
                    "subject": event.subject,
                    "kind": event.kind,
                    "site": event.site,
                    "budget": event.budget,
                    "answer": event.answer,
                }
                for event in (result.degradations or ())
            ],
        }
        if incremental is not None:
            body["incremental"] = incremental
        if request["op"] == "query":
            src, dst = request["pair"]
            records = why_records(result, src, dst)
            if not records:
                return invalid(
                    request_id,
                    f"no provenance for pair {src!r} -> {dst!r}",
                )
            body["pair"] = list(request["pair"])
            body["provenance"] = [record.to_dict() for record in records]
        envelope = response(status, request_id, **body)
        if request["op"] == "analyze" and not degraded:
            # Degraded answers describe this run's budget, not the
            # program: caching them would keep serving load-shaped
            # results after the load has passed.
            self._result_cache_put((source_digest, options_key), envelope)
        if self.store is not None:
            self.store.flush()
        self._record(request, program.name, options, result)
        return envelope

    def _build_options(self, request: dict) -> tuple[AnalysisOptions, tuple]:
        requested = request["options"]
        try:
            assertions = tuple(
                parse_assertion(text)
                for text in requested.get("assertions", ())
            )
        except Exception as failure:  # noqa: BLE001 - invalid, not fatal
            raise ValueError(f"bad assertion: {failure}") from failure
        deadline = request.get("deadline_ms")
        if deadline is None:
            deadline = self.default_deadline_ms
        if self.max_deadline_ms is not None:
            deadline = min(deadline, self.max_deadline_ms)
        flags = {
            name: requested[name]
            for name in requested
            if name != "assertions"
        }
        if request["op"] == "query":
            flags["audit"] = True
        options = AnalysisOptions(
            assertions=assertions,
            solver=self.service,
            deadline_ms=deadline,
            policy="degrade",
            **flags,
        )
        options_key = (
            tuple(sorted(flags.items())),
            tuple(sorted(requested.get("assertions", ()))),
            deadline,
        )
        return options, options_key

    # -- the result cache ------------------------------------------------

    def _result_cache_get(self, key):
        with self._result_lock:
            entry = self._result_cache.get(key)
            if entry is not None:
                self._result_cache.move_to_end(key)
            return entry

    def _result_cache_put(self, key, envelope: dict) -> None:
        with self._result_lock:
            self._result_cache[key] = envelope
            self._result_cache.move_to_end(key)
            while len(self._result_cache) > self.result_cache_size:
                self._result_cache.popitem(last=False)

    # -- incremental fingerprints ----------------------------------------

    def _incremental(
        self, program, name: str, source_digest: str, options_key: tuple
    ) -> dict | None:
        """Diff this submission's pair fingerprints against the stored
        index for ``name``; persist the new index.  Store-less servers
        and store failures report nothing (None) rather than guessing."""

        if self.store is None:
            return None
        extra = repr(options_key[:2])
        fingerprints = pair_fingerprints(program, extra)
        blob_key = f"fingerprints:{name}"
        previous = None
        raw = self.store.get_blob(blob_key)
        if raw is not None:
            try:
                previous = json.loads(raw)
            except ValueError:
                previous = None
        summary = diff_fingerprints(previous, fingerprints)
        _metrics.inc("serve.incremental.pairs_reused", summary["unchanged"])
        _metrics.inc(
            "serve.incremental.pairs_changed",
            summary["changed"] + summary["added"],
        )
        self.store.put_blob(blob_key, json.dumps(fingerprints, sort_keys=True))
        summary["source"] = source_digest[:16]
        return summary

    # -- telemetry -------------------------------------------------------

    def _record(self, request, program_name, options, result) -> None:
        if self.ledger_path is None:
            return
        try:
            record = run_record(
                "serve",
                program=program_name,
                options=options,
                registry=self.registry,
                result=result,
            )
            record["serve"] = {
                "op": request["op"],
                "admission": self.admission.stats(),
                "store": self.store.stats() if self.store else None,
            }
            record["backend"] = dict(self.service.backend.info())
            append_run(record, self.ledger_path)
        except Exception:  # noqa: BLE001 - telemetry must not kill serving
            pass

    def stats(self) -> dict:
        """The /stats snapshot: every layer's counters in one place."""

        quantiles = {}
        histogram = self.registry.histograms.get("serve.request_seconds")
        if histogram is not None and histogram.count:
            quantiles = {
                "count": histogram.count,
                "p50": histogram.quantile(0.5),
                "p99": histogram.quantile(0.99),
                "max": histogram.max,
            }
        return {
            "run_id": self.run_id,
            "uptime_s": round(time.time() - self.started_at, 3),
            "ready": self.ready(),
            "requests": self.requests,
            "responses": dict(self.responses),
            "result_cache": {
                "hits": self.result_cache_hits,
                "size": len(self._result_cache),
                "maxsize": self.result_cache_size,
            },
            "faults": {
                "dropped": self.faults_dropped,
                "slowed": self.faults_slowed,
            },
            "request_seconds": quantiles,
            "admission": self.admission.stats(),
            "solver": self.service.stats(),
            "store": self.store.stats() if self.store is not None else None,
        }
