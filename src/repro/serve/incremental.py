"""Constraint fingerprints for incremental re-analysis.

A re-submitted program usually changes a statement or two; the other
dependence pairs pose *exactly* the same constraint systems as last
time.  Those systems hash to the same canonical keys, so the persistent
store answers them without solving — the solver-level half of
incremental re-analysis is the cache tier itself.  This module supplies
the request-level half: a structural fingerprint per candidate
dependence pair, so the daemon can tell the client (and its own
telemetry) which pairs were actually re-solved and which rode the store.

A pair's fingerprint covers everything that reaches its constraint
system: the dependence kind, both subscript vectors, both full loop
nests (bounds, steps), the source-order relation between the two
statements, the declared bounds of the array, and the program's
symbolic assertions are the caller's to fold in via ``extra``.  It
deliberately excludes statement labels and absolute positions, so
renaming a label or inserting an unrelated statement does not dirty
untouched pairs.
"""

from __future__ import annotations

import hashlib
import json

from ..ir.ast import Access, Program

__all__ = ["pair_fingerprints", "diff_fingerprints"]


def _loop_signature(access: Access) -> list:
    return [
        [
            loop.var,
            [str(lower) for lower in loop.lowers],
            [str(upper) for upper in loop.uppers],
            loop.step,
        ]
        for loop in access.statement.loops
    ]


def _access_signature(access: Access) -> list:
    return [
        str(access.ref),
        access.slot,
        access.is_write,
        _loop_signature(access),
    ]


def _pair_id(kind: str, src: Access, dst: Access) -> str:
    return f"{kind}:{src.statement.label}:{src.ref}->{dst.statement.label}:{dst.ref}"


def pair_fingerprints(program: Program, extra: str = "") -> dict[str, str]:
    """``{pair id: fingerprint}`` for every candidate dependence pair.

    Candidates mirror the analysis's enumeration: per array, flow
    (write before read in the pairing, both orders of execution are the
    problem's business), anti (read/write) and output (write/write).
    ``extra`` folds request-level context that changes constraint
    systems globally — serialized assertions, option flags.
    """

    by_array: dict[str, list[Access]] = {}
    for access in program.accesses():
        by_array.setdefault(access.array, []).append(access)
    bounds = {
        array: [[str(lo), str(hi)] for lo, hi in spec]
        for array, spec in program.array_bounds.items()
    }
    fingerprints: dict[str, str] = {}
    for array, accesses in by_array.items():
        writes = [a for a in accesses if a.is_write]
        reads = [a for a in accesses if not a.is_write]
        pairs: list[tuple[str, Access, Access]] = []
        for w in writes:
            for r in reads:
                pairs.append(("flow", w, r))
                pairs.append(("anti", r, w))
            for w2 in writes:
                pairs.append(("output", w, w2))
        for kind, src, dst in pairs:
            payload = json.dumps(
                [
                    kind,
                    _access_signature(src),
                    _access_signature(dst),
                    # Relative source order, not absolute position: an
                    # inserted unrelated statement must not dirty this.
                    (src.statement.position < dst.statement.position)
                    - (src.statement.position > dst.statement.position),
                    src.statement.position == dst.statement.position,
                    bounds.get(array),
                    extra,
                ],
                sort_keys=True,
            )
            fingerprints[_pair_id(kind, src, dst)] = hashlib.sha256(
                payload.encode()
            ).hexdigest()
    return fingerprints


def diff_fingerprints(
    old: dict[str, str] | None, new: dict[str, str]
) -> dict:
    """The incremental summary the serve response reports.

    ``unchanged`` pairs resolve through the persistent cache tier;
    ``changed``/``added`` pairs are the real re-analysis work; a None
    ``old`` (first sight of the program) is a cold submission.
    """

    if old is None:
        return {
            "cold": True,
            "pairs": len(new),
            "unchanged": 0,
            "changed": 0,
            "added": len(new),
            "removed": 0,
        }
    unchanged = changed = added = 0
    for pair, fingerprint in new.items():
        previous = old.get(pair)
        if previous is None:
            added += 1
        elif previous == fingerprint:
            unchanged += 1
        else:
            changed += 1
    removed = sum(1 for pair in old if pair not in new)
    return {
        "cold": False,
        "pairs": len(new),
        "unchanged": unchanged,
        "changed": changed,
        "added": added,
        "removed": removed,
    }
