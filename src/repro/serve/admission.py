"""Admission control: bounded concurrency with load-shedding.

The daemon multiplexes every request through one shared serial
:class:`~repro.solver.SolverService`, so unbounded acceptance would just
trade latency for memory until something falls over.  The controller
enforces two limits:

* ``max_inflight`` requests execute at once (a semaphore);
* at most ``queue_depth`` further requests *wait* for a slot, each for
  at most ``queue_timeout_s``.

Anything beyond that is shed immediately with a ``retry_after_ms`` hint
(the observed p50 request latency when known, the queue timeout
otherwise) — a 429, not a slow death.  Shedding is the outermost
degrade-don't-die layer: the solver-level guard degrades *answers*, the
controller degrades *throughput*, and neither ever kills the process.
"""

from __future__ import annotations

import threading

from ..obs import metrics as _metrics

__all__ = ["AdmissionController", "AdmissionTicket"]


class AdmissionTicket:
    """Proof of admission; release it in a ``finally``."""

    __slots__ = ("_controller", "_released")

    def __init__(self, controller: "AdmissionController"):
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._leave()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """Semaphore-bounded admission with a bounded, timed wait queue."""

    def __init__(
        self,
        *,
        max_inflight: int = 4,
        queue_depth: int = 16,
        queue_timeout_s: float = 1.0,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.queue_timeout_s = queue_timeout_s
        self._slots = threading.BoundedSemaphore(max_inflight)
        self._lock = threading.Lock()
        self._waiting = 0
        self._inflight = 0
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_timeout = 0
        #: Exponentially-weighted request latency (seconds), fed by the
        #: app after each request; sizes the retry-after hint.
        self._latency_ewma: float | None = None

    # -- the two sides ---------------------------------------------------

    def admit(self) -> AdmissionTicket | None:
        """A ticket, or None when the request must be shed."""

        # A free slot admits immediately; queue_depth bounds *waiting*
        # only (queue_depth=0 means admit-or-shed, never block).
        if self._slots.acquire(blocking=False):
            return self._admitted()
        with self._lock:
            if self._waiting >= self.queue_depth:
                self.shed_queue_full += 1
                _metrics.inc("serve.rejected")
                return None
            self._waiting += 1
        try:
            acquired = self._slots.acquire(timeout=self.queue_timeout_s)
        finally:
            with self._lock:
                self._waiting -= 1
        if not acquired:
            with self._lock:
                self.shed_timeout += 1
            _metrics.inc("serve.rejected")
            return None
        return self._admitted()

    def _admitted(self) -> AdmissionTicket:
        with self._lock:
            self._inflight += 1
            self.admitted += 1
            _metrics.set_gauge("serve.inflight", self._inflight)
        return AdmissionTicket(self)

    def _leave(self) -> None:
        with self._lock:
            self._inflight -= 1
            _metrics.set_gauge("serve.inflight", self._inflight)
        self._slots.release()

    # -- hints -----------------------------------------------------------

    def note_latency(self, seconds: float) -> None:
        with self._lock:
            if self._latency_ewma is None:
                self._latency_ewma = seconds
            else:
                self._latency_ewma = 0.8 * self._latency_ewma + 0.2 * seconds

    def retry_after_ms(self) -> float:
        """How long a shed client should back off, in milliseconds."""

        with self._lock:
            latency = self._latency_ewma
        if latency is None:
            return round(self.queue_timeout_s * 1000.0, 3)
        # Enough time for the queue ahead of the client to drain once.
        backlog = max(1, self.queue_depth)
        return round(
            max(latency * backlog / self.max_inflight, latency) * 1000.0, 3
        )

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._waiting

    def stats(self) -> dict:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
                "queue_timeout_s": self.queue_timeout_s,
                "inflight": self._inflight,
                "waiting": self._waiting,
                "admitted": self.admitted,
                "shed_queue_full": self.shed_queue_full,
                "shed_timeout": self.shed_timeout,
            }
