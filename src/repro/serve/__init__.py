"""Dependence analysis as a service: the degrade-don't-die daemon.

``python -m repro serve`` runs a long-lived server that multiplexes
analysis/query requests (JSON over HTTP and/or a unix socket) through
one shared :class:`~repro.solver.SolverService`, with per-request
deadline governance from :mod:`repro.guard`, bounded-queue admission
control, and a crash-safe persistent solver cache tier
(:mod:`repro.omega.store`) shared across clients and restarts.

Layer map: :mod:`.protocol` (envelopes), :mod:`.admission`
(load-shedding), :mod:`.incremental` (pair fingerprints), :mod:`.app`
(shared state + dispatch), :mod:`.daemon` (transports + lifecycle),
:mod:`.client` (stdlib client).  See docs/SERVICE.md for the protocol
reference and the operational runbook.
"""

from .admission import AdmissionController
from .app import DEFAULT_DEADLINE_MS, ServeApp
from .client import ServeClient, ServeError
from .daemon import Daemon
from .incremental import diff_fingerprints, pair_fingerprints
from .protocol import PROTOCOL, ProtocolError, validate_request

__all__ = [
    "PROTOCOL",
    "DEFAULT_DEADLINE_MS",
    "AdmissionController",
    "Daemon",
    "ProtocolError",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "diff_fingerprints",
    "pair_fingerprints",
    "validate_request",
]
