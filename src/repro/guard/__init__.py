"""repro.guard — resource governance and graceful degradation.

The paper observes that the Omega test's expensive paths (splintering,
exponential Fourier–Motzkin cascades) are "almost never needed in
practice"; production compilers survive the rare blowup by *conservatively
assuming a dependence*, never by crashing.  This package makes that a
first-class, tested code path:

- :class:`Budget` — per-run resource limits (wall-clock deadline, FM
  elimination steps, splinter count, DNF size), activated with
  :func:`governed` and consulted at cooperative :func:`checkpoint` /
  :func:`spend` sites inside the Omega core.  Exhaustion raises the
  structured :class:`repro.omega.errors.BudgetExhausted`.
- :class:`DegradationLog` / :class:`DegradationEvent` — the provenance
  trail the solver service appends to whenever it substitutes a sound
  conservative answer; surfaces as ``AnalysisResult.degradations``.
- :func:`subject` — tags the dependence currently under analysis so a
  degradation can name *which* dependence it affected.
- :mod:`repro.guard.faults` — a deterministic, seeded fault-injection
  harness (``REPRO_FAULTS``) for chaos tests.

See ``docs/ROBUSTNESS.md`` for the policy and the soundness argument.
"""

from ..omega.errors import BudgetExhausted, OmegaComplexityError
from .budget import (
    Budget,
    DegradationEvent,
    DegradationLog,
    Governor,
    active,
    checkpoint,
    current_subject,
    governed,
    spend,
    subject,
)
from .faults import FaultInjected, FaultPlan, injecting, plan_from_env, suppressed

__all__ = [
    "Budget",
    "BudgetExhausted",
    "DegradationEvent",
    "DegradationLog",
    "FaultInjected",
    "FaultPlan",
    "Governor",
    "OmegaComplexityError",
    "active",
    "checkpoint",
    "current_subject",
    "governed",
    "injecting",
    "plan_from_env",
    "spend",
    "subject",
    "suppressed",
]
