"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` decides — purely from its seed, the checkpoint site
name and a per-site call counter — whether a given checkpoint "fails".
Decisions are derived from SHA-256 draws, never from :mod:`random`'s
global state or ``hash()`` (which is salted per process), so a plan
replays identically across runs, machines and ``PYTHONHASHSEED`` values.

Three fault kinds:

``timeout``
    Raise :class:`~repro.omega.errors.BudgetExhausted` with
    ``budget="deadline"`` — what a blown wall-clock deadline looks like.
``budget``
    Raise :class:`~repro.omega.errors.BudgetExhausted` for one of the work
    meters (``fm_steps`` / ``splinters`` / ``dnf_size``), chosen by a
    second deterministic draw.
``crash``
    Raise :class:`FaultInjected` (a plain ``RuntimeError``): an unexpected
    worker exception.  Crash faults fire only at the solver service's
    worker sites (:data:`CRASH_SITES`) where the retry/isolation machinery
    is the component under test; elsewhere they would bypass the layers
    that are supposed to contain them.

Plans activate with :func:`injecting` (thread-local, propagated to solver
workers) and are typically built from the ``REPRO_FAULTS`` environment
variable via :func:`plan_from_env`:

    REPRO_FAULTS=42
    REPRO_FAULTS="seed=42,rate=0.1,kinds=timeout|crash,sites=omega.sat"
"""

from __future__ import annotations

import hashlib
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..obs.instrument import metrics as _metrics
from ..omega.errors import BudgetExhausted

__all__ = [
    "CRASH_SITES",
    "DEFAULT_RATE",
    "FaultInjected",
    "FaultPlan",
    "SERVE_KINDS",
    "current_plan",
    "injecting",
    "plan_from_env",
    "suppressed",
]

#: Default per-checkpoint failure probability.
DEFAULT_RATE = 0.05

#: Solver-path fault kinds a plan may inject.
KINDS = ("timeout", "budget", "crash")

#: Serve-path fault kinds (see :meth:`FaultPlan.maybe_serve`): drop a
#: request at admission, fail a persistent-store I/O, or stall a client
#: response.  These never raise from :meth:`maybe_fail` — the serve
#: layers poll for them at their own checkpoints, because the sound
#: reaction differs per site (shed vs degrade vs slow), unlike the
#: solver faults whose uniform reaction is "raise BudgetExhausted".
SERVE_KINDS = ("request-drop", "store-io-error", "slow-client")

#: Sites where ``crash`` faults may fire (the solver service's worker
#: wrapper consults these through :meth:`FaultPlan.maybe_crash`).
CRASH_SITES = frozenset({"solver.worker"})

#: Work meters a ``budget`` fault can claim to have exhausted.
_BUDGET_KINDS = ("fm_steps", "splinters", "dnf_size")


class FaultInjected(RuntimeError):
    """An injected worker crash (an 'unexpected' exception by design)."""

    def __init__(self, site: str, count: int):
        super().__init__(f"injected fault at {site} (call #{count})")
        self.site = site
        self.count = count


def _draw(seed: int, site: str, count: int, salt: str = "") -> float:
    """A deterministic uniform draw in [0, 1)."""

    digest = hashlib.sha256(
        f"{seed}|{site}|{count}|{salt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of injected faults."""

    seed: int
    rate: float = DEFAULT_RATE
    kinds: tuple[str, ...] = KINDS
    #: Restrict injection to these sites (None = every site).
    sites: frozenset[str] | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _counts: dict = field(default_factory=dict, repr=False)
    #: Every fault actually raised, as (site, kind, count) — for tests.
    injected: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        for kind in self.kinds:
            if kind not in KINDS and kind not in SERVE_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")

    def _count(self, site: str) -> int:
        with self._lock:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
        return count

    def _applies(self, site: str) -> bool:
        return self.sites is None or site in self.sites

    def maybe_fail(self, site: str) -> None:
        """Checkpoint hook: raise a timeout/budget fault, or return.

        Crash faults never fire here — see :meth:`maybe_crash`.
        """

        soft = [k for k in self.kinds if k in ("timeout", "budget")]
        if not soft or not self._applies(site):
            return
        count = self._count(site)
        if _draw(self.seed, site, count) >= self.rate:
            return
        kind = soft[int(_draw(self.seed, site, count, "kind") * len(soft))]
        self.injected.append((site, kind, count))
        _metrics.inc("guard.faults_injected")
        if kind == "timeout":
            raise BudgetExhausted(
                "injected deadline fault",
                site=site,
                budget="deadline",
                limit=0.0,
                spent=0.0,
            )
        meter = _BUDGET_KINDS[
            int(_draw(self.seed, site, count, "meter") * len(_BUDGET_KINDS))
        ]
        raise BudgetExhausted(
            "injected budget fault", site=site, budget=meter, limit=0, spent=1
        )

    def maybe_serve(self, site: str, kinds: tuple[str, ...]) -> str | None:
        """Serve-path hook: the drawn fault kind for this call, or None.

        ``kinds`` restricts the draw to the fault kinds the calling site
        knows how to express (a store can suffer ``store-io-error`` but
        not ``slow-client``).  Unlike :meth:`maybe_fail` this *returns*
        the kind instead of raising — the serve layers translate it into
        their own failure mode (a 429, a sqlite error, a stalled write).
        """

        armed = [k for k in self.kinds if k in SERVE_KINDS and k in kinds]
        if not armed or not self._applies(site):
            return None
        count = self._count(site)
        if _draw(self.seed, site, count, "serve") >= self.rate:
            return None
        kind = armed[int(_draw(self.seed, site, count, "servekind") * len(armed))]
        self.injected.append((site, kind, count))
        _metrics.inc("guard.faults_injected")
        return kind

    def maybe_crash(self, site: str) -> None:
        """Worker hook: raise :class:`FaultInjected`, or return."""

        if "crash" not in self.kinds or site not in CRASH_SITES:
            return
        if not self._applies(site):
            return
        count = self._count(site)
        if _draw(self.seed, site, count, "crash") < self.rate:
            self.injected.append((site, "crash", count))
            _metrics.inc("guard.faults_injected")
            raise FaultInjected(site, count)


class _ActivePlans(threading.local):
    def __init__(self) -> None:
        self.stack: list[FaultPlan | None] = []


_active = _ActivePlans()


def current_plan() -> FaultPlan | None:
    """The innermost active fault plan on this thread, or None.

    A :func:`suppressed` scope masks any enclosing plan.
    """

    stack = _active.stack
    return stack[-1] if stack else None


@contextmanager
def injecting(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the enclosed calls on this thread."""

    _active.stack.append(plan)
    try:
        yield plan
    finally:
        _active.stack.pop()


@contextmanager
def suppressed() -> Iterator[None]:
    """Mask fault injection for the enclosed calls (the harness's escape
    hatch: the solver service's last-resort task re-execution runs under
    this, modeling a clean worker restart)."""

    _active.stack.append(None)
    try:
        yield
    finally:
        _active.stack.pop()


def plan_from_env(environ=None) -> FaultPlan | None:
    """Build a plan from ``REPRO_FAULTS``, or None when unset/empty.

    Accepts a bare integer seed, or a comma-separated spec of
    ``seed=N``, ``rate=F``, ``kinds=a|b``, ``sites=x|y``.
    """

    raw = (environ if environ is not None else os.environ).get(
        "REPRO_FAULTS", ""
    ).strip()
    if not raw:
        return None
    if raw.lstrip("-").isdigit():
        return FaultPlan(seed=int(raw))
    seed = 0
    rate = DEFAULT_RATE
    kinds: tuple[str, ...] = KINDS
    sites: frozenset[str] | None = None
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        name = name.strip()
        value = value.strip()
        if name == "seed":
            seed = int(value)
        elif name == "rate":
            rate = float(value)
        elif name == "kinds":
            kinds = tuple(k for k in value.split("|") if k)
        elif name == "sites":
            sites = frozenset(s for s in value.split("|") if s)
        else:
            raise ValueError(f"unknown REPRO_FAULTS field {name!r}")
    return FaultPlan(seed=seed, rate=rate, kinds=kinds, sites=sites)
