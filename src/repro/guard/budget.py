"""Budgets, governed scopes and cooperative checkpoints.

A :class:`Budget` bounds what one analysis run may spend: wall-clock time
(``deadline_ms``) plus three per-query work meters — Fourier–Motzkin
elimination steps (``fm_steps``), splinters generated (``splinters``) and
DNF pieces/cubes materialized (``dnf_size``).  :func:`governed` activates a
budget on the current thread (the solver service propagates the activation
to its workers); the Omega core calls :func:`checkpoint` at the top of its
loops and :func:`spend` wherever it does metered work.  Both are no-ops —
one thread-local attribute read — when nothing is active, so ungoverned
runs pay nothing measurable (the ``guard`` benchmark leg regression-gates
this).

The deadline is global to the governed scope; the work meters are *per
query* (reset by the solver service at each top-level query, see
:meth:`Governor.fresh_query`), matching the tentpole's "a Budget carried
per query": one pathological query exhausts its own allowance without
starving the healthy ones around it.

Exhaustion raises :class:`repro.omega.errors.BudgetExhausted` with full
provenance (site, budget, limit, spent).  What happens next is the
*policy* of the enclosing :func:`governed` scope: ``"degrade"`` (the
default) lets the solver service substitute the sound conservative answer
and record a :class:`DegradationEvent`; ``"raise"`` (the CLI's
``--strict``) propagates.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..obs.instrument import metrics as _metrics
from ..omega.errors import BudgetExhausted
from . import faults as _faults

__all__ = [
    "Budget",
    "DegradationEvent",
    "DegradationLog",
    "Governor",
    "active",
    "checkpoint",
    "current_subject",
    "governed",
    "spend",
    "subject",
]

#: The work meters a :class:`Budget` can bound (besides the deadline).
METER_KINDS = ("fm_steps", "splinters", "dnf_size")

#: Valid degradation policies for :func:`governed`.
POLICIES = ("degrade", "raise")


@dataclass(frozen=True)
class Budget:
    """Resource limits for a governed scope.  ``None`` means unlimited."""

    #: Wall-clock deadline for the whole governed scope, in milliseconds.
    deadline_ms: float | None = None
    #: Fourier–Motzkin eliminations allowed per top-level query.
    fm_steps: int | None = None
    #: Splinters generated per top-level query.
    splinters: int | None = None
    #: DNF pieces/cubes materialized per top-level query.
    dnf_size: int | None = None

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget with no limits: activates the checkpoint machinery
        (useful for fault injection and overhead measurement) without ever
        exhausting."""

        return cls()

    def limit_for(self, kind: str) -> float | None:
        if kind == "deadline":
            return self.deadline_ms
        return getattr(self, kind)


@dataclass
class DegradationEvent:
    """One conservative substitution, with provenance."""

    #: The dependence (or other unit of work) being analyzed, from
    #: :func:`subject`; None when the degradation happened outside any
    #: tagged scope.
    subject: str | None
    #: The query kind that degraded ("sat", "project", "gist", "implies",
    #: "implies-union", or "task" for a worker-task crash).
    kind: str
    #: Checkpoint site that raised (e.g. "omega.fm").
    site: str | None
    #: Budget that was exhausted (e.g. "deadline").
    budget: str | None
    limit: float | None
    spent: float | None
    #: Human description of the substituted answer.
    answer: str

    def describe(self) -> str:
        where = f" at {self.site}" if self.site else ""
        what = f" ({self.budget} budget)" if self.budget else ""
        who = self.subject or "<untagged>"
        return f"{who}: {self.kind} degraded to {self.answer!r}{where}{what}"


class DegradationLog:
    """Thread-safe collection of :class:`DegradationEvent`."""

    def __init__(self) -> None:
        self.events: list[DegradationEvent] = []
        self._lock = threading.Lock()

    def note(self, event: DegradationEvent) -> None:
        with self._lock:
            self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(list(self.events))

    def subjects(self) -> set[str | None]:
        return {event.subject for event in self.events}

    def render(self) -> str:
        lines = [f"{len(self.events)} degraded result(s):"]
        lines.extend(f"  {event.describe()}" for event in self.events)
        return "\n".join(lines)


class _Meter(threading.local):
    """Per-thread, per-query work counters (see Governor.fresh_query)."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.depth = 0


class Governor:
    """Runtime state of one :func:`governed` scope.

    Shared across the solver service's worker threads (the activation stack
    is propagated), so the deadline is global while the work meters are
    thread-local — each worker executes whole queries, so a per-thread
    meter *is* the per-query meter once :meth:`fresh_query` brackets each
    top-level query.
    """

    def __init__(self, budget: Budget, policy: str, log: DegradationLog):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected {POLICIES}")
        self.budget = budget
        self.policy = policy
        self.log = log
        self.started = time.monotonic()
        self._deadline = (
            self.started + budget.deadline_ms / 1000.0
            if budget.deadline_ms is not None
            else None
        )
        self._meter = _Meter()

    # -- checkpoints ----------------------------------------------------
    def check(self, site: str) -> None:
        """Deadline check; called from :func:`checkpoint`."""

        if self._deadline is not None and time.monotonic() >= self._deadline:
            self._exhausted(site, "deadline", self.budget.deadline_ms)

    def spend(self, kind: str, amount: int, site: str) -> None:
        """Meter ``amount`` units of ``kind`` work; raise on overrun."""

        meter = self._meter
        spent = meter.counts.get(kind, 0) + amount
        meter.counts[kind] = spent
        limit = self.budget.limit_for(kind)
        if limit is not None and spent > limit:
            self._exhausted(site, kind, limit, spent)

    def _exhausted(
        self, site: str, kind: str, limit: float | None, spent: float | None = None
    ) -> None:
        if spent is None:
            spent = round((time.monotonic() - self.started) * 1000.0, 3)
        _metrics.inc("guard.budget_exhausted")
        raise BudgetExhausted(site=site, budget=kind, limit=limit, spent=spent)

    # -- per-query meter scoping ---------------------------------------
    @contextmanager
    def fresh_query(self) -> Iterator[None]:
        """Reset this thread's work meters for one top-level query.

        Nested entries (a query evaluated while another is on this
        thread's stack) keep the outer meter: internal re-queries count
        against the query that issued them.
        """

        meter = self._meter
        meter.depth += 1
        if meter.depth == 1:
            meter.counts = {}
        try:
            yield
        finally:
            meter.depth -= 1

    # -- degradation bookkeeping ---------------------------------------
    def note_degradation(
        self, *, kind: str, answer: str, failure: BudgetExhausted
    ) -> DegradationEvent:
        event = DegradationEvent(
            subject=current_subject(),
            kind=kind,
            site=failure.site,
            budget=failure.budget,
            limit=failure.limit,
            spent=failure.spent,
            answer=answer,
        )
        self.log.note(event)
        _metrics.inc("guard.degradations")
        return event


class _GovernorStack(threading.local):
    def __init__(self) -> None:
        self.stack: list[Governor] = []


class _SubjectStack(threading.local):
    def __init__(self) -> None:
        self.stack: list[str] = []


_active = _GovernorStack()
_subjects = _SubjectStack()


def active() -> Governor | None:
    """The innermost governor on this thread, or None."""

    stack = _active.stack
    return stack[-1] if stack else None


@contextmanager
def governed(
    budget: Budget,
    *,
    policy: str = "degrade",
    log: DegradationLog | None = None,
) -> Iterator[Governor]:
    """Activate ``budget`` (and a degradation policy) for the enclosed
    calls on this thread.  The solver service propagates the activation to
    its worker threads."""

    governor = Governor(budget, policy, log if log is not None else DegradationLog())
    _active.stack.append(governor)
    try:
        yield governor
    finally:
        _active.stack.pop()


def checkpoint(site: str) -> None:
    """Cooperative cancellation point: fault injection + deadline check.

    The fast path — no fault plan, no governor — is two thread-local
    attribute reads, cheap enough for the Omega core's inner loops.
    """

    plan = _faults.current_plan()
    if plan is not None:
        plan.maybe_fail(site)
    stack = _active.stack
    if stack:
        stack[-1].check(site)


def spend(kind: str, amount: int = 1, *, site: str) -> None:
    """Meter work against the active budget (no-op when ungoverned)."""

    stack = _active.stack
    if stack:
        stack[-1].spend(kind, amount, site)


def current_subject() -> str | None:
    """The innermost :func:`subject` tag on this thread, or None."""

    stack = _subjects.stack
    return stack[-1] if stack else None


@contextmanager
def subject(tag: str) -> Iterator[None]:
    """Tag the enclosed work (e.g. ``"flow: A(i) -> A(i-1)"``) so any
    degradation inside it carries per-dependence provenance."""

    _subjects.stack.append(tag)
    try:
        yield
    finally:
        _subjects.stack.pop()


# -- cross-thread propagation ------------------------------------------
# The governor, subject and fault-plan stacks are thread-local; register a
# provider so repro.obs.instrument.capture() carries them to solver worker
# threads exactly like the cache/service stacks.


def _propagated_guard_stacks():
    governor_stack = list(_active.stack)
    subject_stack = list(_subjects.stack)
    fault_stack = list(_faults._active.stack)

    @contextmanager
    def install() -> Iterator[None]:
        saved_governors = _active.stack
        saved_subjects = _subjects.stack
        saved_faults = _faults._active.stack
        # Fresh copies per task entry: workers push/pop their own subject
        # tags, which must not race on a shared list object.
        _active.stack = list(governor_stack)
        _subjects.stack = list(subject_stack)
        _faults._active.stack = list(fault_stack)
        try:
            yield
        finally:
            _active.stack = saved_governors
            _subjects.stack = saved_subjects
            _faults._active.stack = saved_faults

    return install


def _register() -> None:
    from ..obs import instrument as _instr

    _instr.register_context(_propagated_guard_stacks)


_register()
