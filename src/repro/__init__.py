"""Reproduction of *Eliminating False Data Dependences using the Omega Test*
(William Pugh and David Wonnacott, PLDI 1992).

The library is organised in layers:

``repro.omega``
    The Omega test itself: exact integer linear constraint solving with
    projection, dark/real shadows, splintering, gists, implications, and a
    Presburger formula layer.
``repro.ir``
    A loop-nest intermediate representation in the style of Michael Wolfe's
    *tiny* tool, including a text parser, a builder API, a pretty-printer
    and a concrete interpreter used for differential testing.
``repro.analysis``
    Array data dependence analysis: dependence problems, direction /
    distance / restraint vectors, and the paper's false-dependence
    elimination machinery — killing, covering, terminating, refinement —
    plus symbolic analysis with user assertions and index arrays.
``repro.baselines``
    The dependence tests "currently in use" that the paper contrasts
    against: ZIV, GCD, single-index exact tests and Banerjee's inequalities.
``repro.programs``
    The paper's benchmark programs: the CHOLSKY NAS kernel, Examples 1-11,
    and a tiny-distribution-like corpus.
``repro.reporting``
    Figure/table regeneration utilities for the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["omega", "ir", "analysis", "baselines", "programs", "reporting"]
