"""E-FIG3 / E-FIG4: regenerate Figures 3 and 4 (CHOLSKY live/dead flow
dependences) and benchmark the analysis that produces them.

Paper: 21 live flow dependences (7 refined [r], 10 covering [C]) and
14 dead ones (killed [k] or covered [c]).  We reproduce the exact row sets;
see tests/programs/test_cholsky.py for the row-by-row assertions.
"""

import pytest

from repro.analysis import AnalysisOptions, analyze
from repro.programs import cholsky
from repro.reporting import flow_rows, flow_tables

from .conftest import write_artifact


@pytest.fixture(scope="module")
def program():
    return cholsky()


def test_bench_cholsky_extended_analysis(benchmark, program):
    result = benchmark.pedantic(
        lambda: analyze(program), rounds=1, iterations=1
    )
    live, dead = flow_rows(result)
    assert len(live) == 21  # Figure 3
    assert len(dead) == 14  # Figure 4
    artifact = flow_tables(result)
    write_artifact("figure3_figure4_cholsky.txt", artifact)
    print()
    print(artifact)


def test_bench_cholsky_standard_analysis(benchmark, program):
    result = benchmark.pedantic(
        lambda: analyze(program, AnalysisOptions(extended=False)),
        rounds=1,
        iterations=1,
    )
    # Standard analysis reports every apparent flow dependence as real.
    assert len(result.flow) == 35
    assert len(result.dead_flow()) == 0
