"""E-EX7 / E-EX8: symbolic dependence analysis experiments.

Example 7: dependence conditions under the assertion 50 <= n <= 100 —
the outer-carried dependence exists only for 1 <= x <= 50, the
inner-carried one only for x = 0 and y < m.

Example 8: index-array queries — the output dependence asks about
Q[a] = Q[b]; the flow dependence about Q[a] = Q[b] - 1; asserting the
permutation property removes the output dependence.
"""

import pytest

from repro.analysis import DependenceKind
from repro.analysis.symbolic import (
    ArrayProperty,
    PropertyRegistry,
    dependence_conditions,
    format_problem,
    generate_query,
    symbolic_dependence_exists,
)
from repro.omega import Variable, le
from repro.programs import example7, example8

from .conftest import write_artifact


def test_bench_example7_conditions(benchmark):
    program = example7()
    write = [a for a in program.writes() if a.array == "A"][0]
    read = [a for a in program.reads() if a.array == "A"][0]
    n = Variable("n", "sym")
    keep = [Variable("x", "sym"), Variable("y", "sym"), Variable("m", "sym")]

    def run():
        return dependence_conditions(
            write,
            read,
            DependenceKind.FLOW,
            assertions=[le(50, n), le(n, 100)],
            array_bounds=program.array_bounds,
            keep_syms=keep,
        )

    conditions = benchmark.pedantic(run, rounds=1, iterations=1)
    by_restraint = {str(c.restraint): c for c in conditions}
    outer = format_problem(by_restraint["(+,*)"].condition)
    inner = format_problem(by_restraint["(0,+)"].condition)
    assert "x >= 1" in outer and "50 >= x" in outer
    assert "x = 0" in inner and "m >= y + 1" in inner

    artifact = (
        "Example 7 symbolic conditions (given 50 <= n <= 100):\n"
        f"  outer-carried (+,*): {outer}    [paper: 1 <= x <= 50]\n"
        f"  inner-carried (0,+): {inner}    [paper: x = 0 and y < m]\n"
    )
    write_artifact("example7_conditions.txt", artifact)
    print()
    print(artifact)


def test_bench_example8_queries(benchmark):
    program = example8()
    write = [a for a in program.writes() if a.array == "A"][0]
    read = [a for a in program.reads() if a.array == "A"][0]

    def run():
        output_q = generate_query(
            write, write, DependenceKind.OUTPUT, array_bounds=program.array_bounds
        )
        flow_q = generate_query(
            write, read, DependenceKind.FLOW, array_bounds=program.array_bounds
        )
        return output_q, flow_q

    output_queries, flow_queries = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    output_text = output_queries[0].render()
    flow_text = flow_queries[0].render()
    assert "Q[a] = Q[b]" in output_text
    assert "Q[a] + 1 = Q[b]" in flow_text

    registry = PropertyRegistry().declare("Q", ArrayProperty.PERMUTATION)
    ruled_out = not symbolic_dependence_exists(
        write,
        write,
        DependenceKind.OUTPUT,
        registry,
        array_bounds=program.array_bounds,
    )
    assert ruled_out

    artifact = (
        "Example 8 index-array dialogue:\n\n"
        "--- output dependence query ---\n"
        + output_text
        + "\n--- flow dependence query ---\n"
        + flow_text
        + "\npermutation property rules out the output dependence: "
        + str(ruled_out)
        + "\n"
    )
    write_artifact("example8_queries.txt", artifact)
    print()
    print(artifact)
