"""Micro-benchmarks of the Omega test core.

Not a paper figure by itself, but the substrate every experiment rests on:
satisfiability, projection (exact, with splinters), gist and implication
costs on dependence-shaped problems.
"""

import pytest

from repro.omega import (
    Problem,
    Variable,
    gist,
    implies,
    is_satisfiable,
    project,
)

i1, i2 = Variable("i1"), Variable("i2")
j1, j2 = Variable("j1"), Variable("j2")
n, m = Variable("n", "sym"), Variable("m", "sym")
d1, d2 = Variable("d1"), Variable("d2")


def dependence_shaped_problem() -> Problem:
    """A typical 2-deep dependence problem (Example 3's shape)."""

    p = Problem()
    p.add_bounds(1, i1, n).add_bounds(2, i2, m)
    p.add_bounds(1, j1, n).add_bounds(2, j2, m)
    p.add_eq(i2, j2 - 1)
    p.add_eq(d1, j1 - i1).add_eq(d2, j2 - i2)
    p.add_ge(d1)
    return p


def splintering_problem() -> Problem:
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return (
        Problem()
        .add_ge(3 * z - x)
        .add_ge(y - 2 * z)
        .add_bounds(0, x, 50)
        .add_bounds(0, y, 50)
    )


def test_bench_satisfiability(benchmark):
    p = dependence_shaped_problem()
    assert benchmark(lambda: is_satisfiable(p))


def test_bench_satisfiability_unsat(benchmark):
    p = dependence_shaped_problem()
    p.add_bounds(1, d2, 0)  # contradiction with d2 = 1
    assert not benchmark(lambda: is_satisfiable(p))


def test_bench_projection_exact(benchmark):
    p = dependence_shaped_problem()
    proj = benchmark(lambda: project(p, [d1, d2]))
    assert proj.exact_union


def test_bench_projection_splinters(benchmark):
    p = splintering_problem()
    x, y = Variable("x"), Variable("y")
    proj = benchmark(lambda: project(p, [x, y]))
    assert proj.splintered


def test_bench_gist(benchmark):
    p = Problem().add_bounds(1, i1, n).add_le(i1, j1).add_le(j1, n)
    q = Problem().add_bounds(1, i1, n).add_bounds(1, j1, n)
    result = benchmark(lambda: gist(p, q))
    assert not result.is_trivially_true()


def test_bench_implication(benchmark):
    q = Problem().add_bounds(2, i1, 3)
    p = Problem().add_bounds(0, i1, 5)
    assert benchmark(lambda: implies(q, p))


def test_bench_equality_heavy(benchmark):
    # Diophantine-heavy: exercises the mod-hat path.
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    p = (
        Problem()
        .add_eq(7 * x + 12 * y + 31 * z, 17)
        .add_eq(3 * x + 5 * y + 14 * z, 7)
        .add_bounds(-100, x, 100)
        .add_bounds(-100, y, 100)
        .add_bounds(-100, z, 100)
    )
    assert benchmark(lambda: is_satisfiable(p))
