"""Solver-cache speedup on the Figure 6 corpus.

Runs the full extended analysis over the timing corpus with the memoizing
solver facade on and off, reports wall time and hit rate, and writes
``results/cache_speedup.txt``.  The cache must never change results
(enforced by ``tests/analysis/test_cache_determinism.py``); this benchmark
establishes that it actually buys time on the workload the paper measures.
"""

import time

from repro.analysis import AnalysisOptions, analyze
from repro.programs import timing_corpus

from .conftest import write_artifact


def run_corpus(cache: bool):
    started = time.perf_counter()
    stats = {"hits": 0, "misses": 0, "evictions": 0}
    for program in timing_corpus():
        result = analyze(program, AnalysisOptions(cache=cache))
        if result.cache_stats is not None:
            for key in stats:
                stats[key] += result.cache_stats[key]
    return time.perf_counter() - started, stats


def measure(rounds: int = 3):
    """Best-of-N corpus sweeps for each configuration, interleaved."""

    best_on, best_off = float("inf"), float("inf")
    totals = None
    for _ in range(rounds):
        elapsed_off, _ = run_corpus(cache=False)
        best_off = min(best_off, elapsed_off)
        elapsed_on, stats = run_corpus(cache=True)
        if elapsed_on < best_on:
            best_on, totals = elapsed_on, stats
    return best_on, best_off, totals


def test_bench_cache_speedup(benchmark):
    benchmark.pedantic(lambda: run_corpus(cache=True), rounds=1, iterations=1)
    cached, plain, stats = measure()
    queries = stats["hits"] + stats["misses"]
    hit_rate = stats["hits"] / queries if queries else 0.0
    speedup = plain / cached if cached else float("inf")
    lines = [
        "Solver cache on the Figure 6 timing corpus (best of 3 sweeps)",
        "",
        f"  cache off : {plain:8.3f} s",
        f"  cache on  : {cached:8.3f} s",
        f"  speedup   : {speedup:8.2f} x",
        "",
        f"  queries   : {queries}",
        f"  hits      : {stats['hits']}  ({hit_rate:.1%} hit rate)",
        f"  misses    : {stats['misses']}",
        f"  evictions : {stats['evictions']}",
        "",
    ]
    artifact = "\n".join(lines)
    write_artifact("cache_speedup.txt", artifact)
    print()
    print(artifact)

    assert stats["hits"] > 0
    assert hit_rate > 0.25  # the corpus re-issues most of its subproblems
    # The headline claim: memoization makes the corpus measurably faster.
    assert cached < plain
