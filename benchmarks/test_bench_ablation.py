"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Gist fast checks** (Section 3.3): the paper lists four fast checks
   that "often completely determine a gist"; we measure gists with and
   without them.
2. **Kill quick tests** (Section 4.5): the output-dependence and distance
   compatibility pre-filters that let most kill tests skip the Omega test.
3. **Partial (range) refinement**: our documented extension; off
   reproduces the paper's generator, on finds Example 5's (0:1,1).
"""

import pytest

from repro.analysis import (
    AnalysisOptions,
    DependenceKind,
    SymbolTable,
    analyze,
    compute_dependences,
)
from repro.analysis.kills import KillTester
from repro.omega import Problem, Variable, gist
from repro.programs import example5
from repro.programs.corpus import contrived_total_overwrite

from .conftest import write_artifact


def _gist_workload():
    n = Variable("n", "sym")
    i1, j1 = Variable("i1"), Variable("j1")
    p = Problem().add_bounds(1, i1, n).add_le(i1 + 1, j1).add_le(j1, n)
    q = Problem().add_bounds(1, i1, n).add_bounds(1, j1, n).add_ge(n - 10)
    return p, q


def test_bench_gist_with_fast_checks(benchmark):
    p, q = _gist_workload()
    result = benchmark(lambda: gist(p, q))
    assert not result.is_trivially_true()


def test_bench_gist_naive_only(benchmark):
    p, q = _gist_workload()
    result = benchmark(lambda: gist(p, q, use_fast_checks=False))
    assert not result.is_trivially_true()


def _kill_setup():
    program = contrived_total_overwrite()
    symbols = SymbolTable()
    writes = program.writes()
    read = [r for r in program.reads() if r.array == "a"][0]
    victim = compute_dependences(
        writes[0], read, DependenceKind.FLOW, symbols
    )[0]
    killer = compute_dependences(
        writes[1], read, DependenceKind.FLOW, symbols
    )[0]
    output_pairs = {(writes[0], writes[1]), (writes[0], writes[0])}
    return symbols, output_pairs, victim, killer


def test_bench_kill_with_quick_tests(benchmark):
    symbols, output_pairs, victim, killer = _kill_setup()

    def run():
        tester = KillTester(symbols, output_pairs)
        return tester.kills(victim, killer)

    assert benchmark(run)


def test_bench_kill_quick_reject_path(benchmark):
    # No output dependence recorded: the quick test answers instantly.
    symbols, _pairs, victim, killer = _kill_setup()

    def run():
        tester = KillTester(symbols, set())
        return tester.kills(victim, killer)

    assert not benchmark(run)


def test_bench_refinement_exact_only(benchmark):
    program = example5()
    result = benchmark.pedantic(
        lambda: analyze(program, AnalysisOptions(partial_refine=False)),
        rounds=1,
        iterations=1,
    )
    (dep,) = result.live_flow()
    assert dep.direction_text() == "(0+,1)"  # paper's generator gives up


def test_bench_refinement_with_ranges(benchmark):
    program = example5()
    result = benchmark.pedantic(
        lambda: analyze(program, AnalysisOptions(partial_refine=True)),
        rounds=1,
        iterations=1,
    )
    (dep,) = result.live_flow()
    assert dep.direction_text() == "(0:1,1)"  # the extension finds it
    write_artifact(
        "ablation_refinement.txt",
        "Example 5 refinement ablation:\n"
        "  exact-fix generator (paper): (0+,1) — no refinement\n"
        "  range extension (ours):      (0:1,1)\n",
    )
