"""E-OBS: overhead of disabled instrumentation.

The observability layer promises to be near-free when nothing collects:
the hot Omega entry points take a single ``obs.off()`` fast-path check
before dispatching to their uninstrumented bodies, ``span(...)`` returns a
shared no-op handle, and ``metrics.inc`` returns immediately.  This
benchmark measures the end-to-end analysis time over the Figure 6 corpus
twice — once as shipped (instrumentation present but disabled) and once
with every hook bypassed entirely (public wrappers rebound to their raw
inner bodies everywhere they were imported) — and asserts the shipped
build stays within 5% of the stripped one.

Min-of-N timing is used on both sides: the minimum is the least noisy
estimator of the true cost on a shared machine.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager

import pytest

from repro.analysis import AnalysisOptions, analyze
from repro.obs import metrics as metrics_mod
from repro.programs import timing_corpus

from .conftest import write_artifact

ROUNDS = 5

#: Modules that imported ``span`` under the ``_span`` alias (the
#: analysis-layer sites have no ``off()`` fast path; their spans are
#: per-dependence, not per-solver-call).
_SPAN_SITES = (
    "repro.analysis.kills",
    "repro.analysis.cover",
    "repro.analysis.refine",
    "repro.analysis.engine",
)


def _raw_entry_points():
    """Uninstrumented versions of the wrapped Omega entry points."""

    import importlib

    # importlib.import_module, because ``repro.omega.__init__`` re-exports
    # functions named like the submodules (``project``, ``gist``) and a
    # plain ``import ... as`` would resolve to those instead.
    eliminate = importlib.import_module("repro.omega.eliminate")
    gist = importlib.import_module("repro.omega.gist")
    project = importlib.import_module("repro.omega.project")
    solve = importlib.import_module("repro.omega.solve")
    GistStats = gist.GistStats

    def is_satisfiable(problem):
        return solve._sat(problem, 0)

    def fourier_motzkin(problem, var, *, want_splinters=True, max_splinters=64):
        return eliminate._fourier_motzkin(
            problem, var, want_splinters, max_splinters
        )

    def eliminate_equalities(problem, protected=frozenset()):
        return eliminate._eliminate_equalities(problem, protected)

    def raw_project(problem, keep):
        return project._project(problem, frozenset(keep))

    def raw_gist(p, q, *, stats=None, stop_if_not_true=False, use_fast_checks=True):
        return gist._gist(
            p,
            q,
            stats if stats is not None else GistStats(),
            stop_if_not_true=stop_if_not_true,
            use_fast_checks=use_fast_checks,
        )

    return {
        solve.is_satisfiable: is_satisfiable,
        eliminate.fourier_motzkin: fourier_motzkin,
        eliminate.eliminate_equalities: eliminate_equalities,
        project.project: raw_project,
        gist.gist: raw_gist,
    }


@contextmanager
def _stripped_instrumentation(monkeypatch_cls):
    """Bypass every obs hook, restoring on exit.

    The wrapped entry points are rebound to their raw bodies in every
    ``repro.*`` module that imported them; the remaining ``_span`` /
    ``metrics`` hooks become plain no-ops.
    """

    import importlib

    patch = monkeypatch_cls()
    replacements = _raw_entry_points()
    for name, module in list(sys.modules.items()):
        if not name.startswith("repro.") or module is None:
            continue
        for attr in dir(module):
            value = getattr(module, attr, None)
            if not callable(value):
                continue
            raw = replacements.get(value)
            if raw is not None:
                patch.setattr(module, attr, raw)

    class _Raw:
        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        duration = 0.0

    raw_span = _Raw()

    def no_span(name, **attrs):
        return raw_span

    def no_op(*args, **kwargs):
        return None

    for site in _SPAN_SITES:
        module = importlib.import_module(site)
        patch.setattr(module, "_span", no_span)
    patch.setattr(metrics_mod, "inc", no_op)
    patch.setattr(metrics_mod, "observe", no_op)
    patch.setattr(metrics_mod, "set_gauge", no_op)
    try:
        yield
    finally:
        patch.undo()


def _one_pass(corpus, options_factory) -> float:
    start = time.perf_counter()
    for program in corpus:
        analyze(program, options_factory())
    return time.perf_counter() - start


@pytest.mark.parametrize("planner", [True, False], ids=["planner", "legacy"])
def test_bench_disabled_instrumentation_overhead(benchmark, planner):
    """The <5% bound holds on *both* analysis paths.

    The planner path's merge loops host the event-bus delivery points and
    its fused tasks carry the lifecycle sinks, so it must be measured
    explicitly rather than inherited from whatever ``REPRO_PLANNER``
    happens to select.
    """

    from pytest import MonkeyPatch

    corpus = timing_corpus()
    options = lambda: AnalysisOptions(planner=planner)  # noqa: E731
    # Warm both paths once (imports, caches) before timing anything.
    _one_pass(corpus, options)
    with _stripped_instrumentation(MonkeyPatch):
        _one_pass(corpus, options)

    # Interleave the two configurations round by round so slow machine
    # drift (thermal, competing load) hits both sides equally; min-of-N
    # then discards the noisy rounds.
    instrumented = stripped = float("inf")
    for _ in range(ROUNDS):
        instrumented = min(instrumented, _one_pass(corpus, options))
        with _stripped_instrumentation(MonkeyPatch):
            stripped = min(stripped, _one_pass(corpus, options))

    overhead = instrumented / stripped - 1.0
    path = "planner" if planner else "per-pair"
    artifact = (
        f"Disabled-instrumentation overhead (Figure 6 corpus, {path} path)\n"
        f"  stripped     min-of-{ROUNDS}: {stripped * 1e3:8.2f} ms\n"
        f"  instrumented min-of-{ROUNDS}: {instrumented * 1e3:8.2f} ms\n"
        f"  overhead: {overhead * 100:+.2f}%\n"
    )
    write_artifact(f"obs_overhead_{path.replace('-', '_')}.txt", artifact)
    print()
    print(artifact)

    benchmark.pedantic(
        lambda: [analyze(program, options()) for program in corpus],
        rounds=1,
        iterations=1,
    )

    assert overhead < 0.05, artifact
