"""Shared benchmark utilities.

Every benchmark that regenerates a paper artifact also writes the rendered
artifact into ``results/`` so the reproduction is inspectable after a run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_artifact(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text)
