"""E-FIG7: Figure 7 — per-pair analysis time, standard and extended,
sorted by extended-analysis time.

The paper's shape: both series rise over several orders of magnitude; the
extended time tracks the standard time with a bounded multiplicative gap,
and the slowest pairs are the split/general ones.
"""

import pytest

from repro.programs import timing_corpus
from repro.reporting import collect_pair_timings, figure7_series, figure7_text

from .conftest import write_artifact


@pytest.fixture(scope="module")
def study():
    return collect_pair_timings(timing_corpus())


def test_bench_figure7_series(benchmark, study):
    series = benchmark.pedantic(
        lambda: figure7_series(study), rounds=3, iterations=1
    )
    assert len(series) == len(study.pair_records)
    artifact = figure7_text(series)
    write_artifact("figure7_sorted_times.txt", artifact)
    print()
    print(artifact)

    # Shape: sorted by extended time; extended >= standard pointwise.
    extended = [e for _s, e in series]
    assert extended == sorted(extended)
    assert all(e >= s for s, e in series)

    # The fast half should be much cheaper than the slow tail, as in the
    # paper's several-orders-of-magnitude spread.
    mid = len(extended) // 2
    if extended[mid] > 0:
        assert extended[-1] / max(extended[mid], 1e-9) > 2
