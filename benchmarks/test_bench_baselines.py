"""E-BASE: the motivating comparison — classical tests vs the Omega test.

"Almost all other dependence analysis algorithms would report these as
true flow dependencies": the baselines (ZIV/SIV/GCD/Banerjee) answer the
memory-overlap question and keep every Figure 4 dead dependence; the
extended Omega analysis eliminates them.
"""

import pytest

from repro.baselines import baseline_dependences, compare_with_omega
from repro.programs import (
    CORPUS,
    cholsky,
    example1,
    example2,
)
from repro.reporting import comparison_table

from .conftest import write_artifact

COMPARE_PROGRAMS = [
    "example1",
    "example2",
    "total_overwrite",
    "strided",
    "double_write",
    "triangular_kill",
    "stencil3",
]


def _factory(name: str):
    if name == "example1":
        return example1
    if name == "example2":
        return example2
    return CORPUS[name]


@pytest.fixture(scope="module")
def comparison():
    return {
        name: compare_with_omega(_factory(name)())
        for name in COMPARE_PROGRAMS
    }


def test_bench_baseline_analysis(benchmark):
    program = cholsky()
    result = benchmark.pedantic(
        lambda: baseline_dependences(program), rounds=3, iterations=1
    )
    assert result.flow_pairs


def test_bench_comparison_table(benchmark, comparison):
    benchmark.pedantic(
        lambda: compare_with_omega(example1()), rounds=1, iterations=1
    )
    artifact = comparison_table(comparison)
    write_artifact("baseline_comparison.txt", artifact)
    print()
    print(artifact)

    # Shape: baselines never report fewer dependences than the true live
    # set, and on kill-heavy programs strictly more.
    for name, counts in comparison.items():
        assert counts["baseline"] >= counts["omega_live"], name
    killers = ["example1", "total_overwrite", "double_write"]
    assert any(
        comparison[name]["baseline"] > comparison[name]["omega_live"]
        for name in killers
    )


def test_baseline_vs_omega_on_cholsky_standard():
    # The baselines and standard Omega agree on the overlap question's
    # order of magnitude; the extended analysis is what removes the 14
    # false flow dependences.
    from repro.analysis import AnalysisOptions, analyze

    program = cholsky()
    baseline = baseline_dependences(program)
    extended = analyze(program)
    assert len(baseline.flow_pairs) >= len(
        {(d.src, d.dst) for d in extended.live_flow()}
    )
