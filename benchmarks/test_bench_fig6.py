"""E-FIG6L / E-FIG6R: the Figure 6 timing study.

Left graph: extended vs standard analysis time per write/read array pair,
with three populations — pairs decided by quick tests alone (no Omega
consultation for refinement/coverage), pairs with a general test on a
single dependence vector, and pairs split into several vectors.  The
paper's shape: the general tests cost 2-4x the standard analysis; the
quick-test population dominates.

Right graph: kill-test time against dependence-generation time; most kill
tests are settled by the quick tests without consulting the Omega test.
"""

import pytest

from repro.programs import timing_corpus
from repro.reporting import (
    collect_pair_timings,
    figure6_left_summary,
    figure6_right_summary,
    figure6_text,
)

from .conftest import write_artifact


@pytest.fixture(scope="module")
def study():
    return collect_pair_timings(timing_corpus())


def test_bench_figure6_corpus_timing(benchmark, study):
    # Benchmark one representative mid-size program end to end; the module
    # fixture already holds the whole-corpus study used for the figure.
    from repro.analysis import AnalysisOptions, analyze
    from repro.programs.corpus import lu_decomposition

    program = lu_decomposition()
    benchmark.pedantic(
        lambda: analyze(program, AnalysisOptions(record_timings=True)),
        rounds=1,
        iterations=1,
    )
    artifact = figure6_text(study)
    write_artifact("figure6_timing.txt", artifact)
    print()
    print(artifact)

    counts = study.counts()
    # Shape assertions (populations in the paper: 264 fast, 81 general,
    # 72 split of 417; our corpus is smaller but the ordering holds).
    assert counts["pairs"] > 40
    assert counts["fast"] > counts["split"]
    assert counts["general"] + counts["split"] > 0


def test_figure6_left_ratios(study):
    summary = figure6_left_summary(study)
    # Extended analysis costs more than standard, but stays within a small
    # factor for the general-test population ("2 or 3 times the amount of
    # time needed to generate the dependence").
    assert summary["all"]["median_ratio"] >= 1.0
    if summary["general"]["count"]:
        assert summary["general"]["median_ratio"] < 25


def test_figure6_right_quick_tests_dominate(study):
    summary = figure6_right_summary(study)
    # "There were 54 cases in which the Omega test was consulted" out of
    # 338 kill tests: quick tests must dispose of a large share here too.
    total = summary["quick_count"] + summary["omega_count"]
    if total:
        assert summary["quick_count"] >= total * 0.3
