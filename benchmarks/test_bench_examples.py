"""E-EX16: the Examples 1-6 table (kills, covers, refinements).

Regenerates the figure's "Unrefined flow dependence / Refined flow
dependence" rows and the Example 1/2 eliminations, and benchmarks the
analyses.
"""

import pytest

from repro.analysis import AnalysisOptions, DependenceStatus, analyze
from repro.programs import (
    example1,
    example2,
    example3,
    example4,
    example5,
    example6,
)

from .conftest import write_artifact

EXPECTED_REFINEMENTS = {
    "example3": ("(0+,1)", "(0,1)"),
    "example4": ("(0+,1)", "(0,1)"),
    "example5": ("(0+,1)", "(0:1,1)"),
    "example6": ("(+,+)", "(1,1)"),
}


@pytest.fixture(scope="module")
def analyses():
    options = AnalysisOptions(partial_refine=True)
    return {
        factory().name: analyze(factory(), options)
        for factory in (example1, example2, example3, example4, example5, example6)
    }


def test_bench_examples_1_to_6(benchmark, analyses):
    options = AnalysisOptions(partial_refine=True)

    def run_all():
        return [
            analyze(factory(), options)
            for factory in (
                example1,
                example2,
                example3,
                example4,
                example5,
                example6,
            )
        ]

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["Examples 1-6 (paper Section 4 figure)", ""]
    # Example 1: killed flow dependence.
    ex1 = analyses["example1"]
    dead = ex1.dead_flow()
    assert len(dead) == 1
    lines.append(f"example1: killed   {dead[0].src} -> {dead[0].dst}")
    # Example 2: covering write + eliminations.
    ex2 = analyses["example2"]
    (cover,) = [d for d in ex2.live_flow() if d.covers]
    assert len(ex2.dead_flow()) == 2
    lines.append(f"example2: cover    {cover.src} -> {cover.dst} [C]")
    for dep in ex2.dead_flow():
        lines.append(f"example2: dead     {dep.src} -> {dep.dst} [{dep.tags()}]")
    # Examples 3-6: refinements.
    for name, (unrefined, refined) in EXPECTED_REFINEMENTS.items():
        (dep,) = analyses[name].live_flow()
        got_unrefined = ", ".join(str(v) for v in dep.unrefined_directions)
        assert dep.refined, name
        assert got_unrefined == unrefined, (name, got_unrefined)
        assert dep.direction_text() == refined, (name, dep.direction_text())
        lines.append(
            f"{name}: unrefined {unrefined}  ->  refined {refined}"
        )
    artifact = "\n".join(lines) + "\n"
    write_artifact("examples_1_to_6.txt", artifact)
    print()
    print(artifact)
