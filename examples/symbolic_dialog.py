#!/usr/bin/env python
"""Section 5's symbolic analysis: conditions, dialogue and properties.

Part 1 (Example 7): under which conditions on x, y, m does each dependence
exist, given the user asserted 50 <= n <= 100?

Part 2 (Example 8): index arrays — the engine formulates the questions the
paper shows ("Is it the case that ... Q[a] = Q[b] never happens?"), and the
user can answer by *stating a property* of Q instead: permutation, strictly
increasing, injective.

Run:  python examples/symbolic_dialog.py
"""

from repro.analysis import DependenceKind
from repro.analysis.symbolic import (
    ArrayProperty,
    PropertyRegistry,
    dependence_conditions,
    format_problem,
    generate_query,
    symbolic_dependence_exists,
)
from repro.ir import to_text
from repro.omega import Variable, le
from repro.programs import example7, example8


def part1_example7() -> None:
    program = example7()
    print("=" * 64)
    print("Example 7: symbolic dependence conditions")
    print("-" * 64)
    print(to_text(program))
    write = [a for a in program.writes() if a.array == "A"][0]
    read = [a for a in program.reads() if a.array == "A"][0]

    n = Variable("n", "sym")
    keep = [Variable("x", "sym"), Variable("y", "sym"), Variable("m", "sym")]
    conditions = dependence_conditions(
        write,
        read,
        DependenceKind.FLOW,
        assertions=[le(50, n), le(n, 100)],
        array_bounds=program.array_bounds,
        keep_syms=keep,
    )
    print("given: all references in bounds, 50 <= n <= 100")
    for cond in conditions:
        print(
            f"  dependence with restraint {cond.restraint} exists iff "
            f"{format_problem(cond.condition)}"
        )
    print()


def part2_example8() -> None:
    program = example8()
    print("=" * 64)
    print("Example 8: index arrays and the user dialogue")
    print("-" * 64)
    print(to_text(program))
    write = [a for a in program.writes() if a.array == "A"][0]
    read = [a for a in program.reads() if a.array == "A"][0]

    print("--- checking for an output dependence (write vs write) ---")
    for query in generate_query(
        write, write, DependenceKind.OUTPUT, array_bounds=program.array_bounds
    ):
        print(query.render())

    print("--- checking for a flow dependence (write vs read) ---")
    for query in generate_query(
        write, read, DependenceKind.FLOW, array_bounds=program.array_bounds
    ):
        print(query.render())

    print("user: 'Q is a permutation array'")
    registry = PropertyRegistry().declare("Q", ArrayProperty.PERMUTATION)
    output_dep = symbolic_dependence_exists(
        write,
        write,
        DependenceKind.OUTPUT,
        registry,
        array_bounds=program.array_bounds,
    )
    flow_dep = symbolic_dependence_exists(
        write,
        read,
        DependenceKind.FLOW,
        registry,
        array_bounds=program.array_bounds,
    )
    print(f"  output dependence still possible: {output_dep}")
    print(f"  flow dependence still possible:   {flow_dep}")
    print()
    print("user: 'Q is strictly increasing'")
    registry = PropertyRegistry().declare("Q", ArrayProperty.STRICTLY_INCREASING)
    print(
        "  output dependence still possible:",
        symbolic_dependence_exists(
            write,
            write,
            DependenceKind.OUTPUT,
            registry,
            array_bounds=program.array_bounds,
        ),
    )


def main() -> None:
    part1_example7()
    part2_example8()


if __name__ == "__main__":
    main()
