#!/usr/bin/env python
"""Regenerate Figures 3 and 4: live and dead flow dependences of CHOLSKY.

This is the paper's headline experiment — the NAS CHOLSKY kernel, analysed
with refinement, covering and killing.  The output matches the paper's
Figure 3 (21 live dependences) and Figure 4 (14 dead ones) row for row.

Run:  python examples/cholsky_report.py
"""

import time

from repro.analysis import AnalysisOptions, analyze
from repro.ir import run_program, value_based_flows
from repro.programs import cholsky
from repro.reporting import flow_tables


def main() -> None:
    program = cholsky()
    print(f"CHOLSKY: {len(program.statements)} statements, "
          f"{len(program.writes())} writes, {len(program.reads())} reads")

    started = time.perf_counter()
    result = analyze(program, AnalysisOptions(record_timings=True))
    elapsed = time.perf_counter() - started
    print(f"extended analysis took {elapsed:.1f}s "
          f"({len(result.pair_records)} write/read pairs)\n")

    print(flow_tables(result))

    # Cross-check against actually executing the kernel: every value that
    # really flows must be covered by a live dependence, and none of the
    # dead dependences may carry any value.
    live = {(d.src, d.dst) for d in result.live_flow()}
    dead = {(d.src, d.dst) for d in result.dead_flow()} - live
    trace = run_program(program, dict(N=4, M=2, NMAT=1, NRHS=1, EPS=1))
    actual = {(f.source, f.destination) for f in value_based_flows(trace)}
    print(f"interpreter cross-check: {len(trace.events)} accesses, "
          f"{len(actual)} actual flow pairs")
    print(f"  actual flows missing from live set : {len(actual - live)}")
    print(f"  dead dependences that actually flow: {len(actual & dead)}")


if __name__ == "__main__":
    main()
