#!/usr/bin/env python
"""Quickstart: parse a loop nest, analyze it, and inspect the results.

Run:  python examples/quickstart.py
"""

from repro.analysis import AnalysisOptions, analyze
from repro.ir import parse
from repro.reporting import flow_tables

SOURCE = """
# A producer sweep, a full overwrite, and a consumer: conventional
# dependence analysis links s1 to the read in s3, but no value ever
# flows that way -- the s2 write kills it.
for i := 1 to n do
  a(i) := b(i)
for i := 1 to n do
  a(i) := c(i)
for i := 1 to n do
  d(i) := a(i)
"""


def main() -> None:
    program = parse(SOURCE, "quickstart")
    print("Program:")
    print(program)

    # --- standard analysis: the conservative question -----------------
    standard = analyze(program, AnalysisOptions(extended=False))
    print(f"standard analysis: {len(standard.flow)} flow dependences, "
          f"none eliminated")

    # --- extended analysis: kills, covers, refinement ------------------
    extended = analyze(program)
    print(
        f"extended analysis: {len(extended.live_flow())} live, "
        f"{len(extended.dead_flow())} dead"
    )
    print()
    print(flow_tables(extended))

    # Every dependence carries structured data, not just a table row:
    for dep in extended.dead_flow():
        print(
            f"dead: {dep.src} -> {dep.dst}: eliminated by "
            f"{dep.eliminated_by.src} ({dep.status.value})"
        )


if __name__ == "__main__":
    main()
