#!/usr/bin/env python
"""Survey the corpus: Omega-based analysis vs the classical baselines.

For every program in the corpus, report how many flow dependences the
classical combined test (ZIV/SIV/GCD/Banerjee) keeps, how many the Omega
test keeps without kills, and how many survive the extended analysis —
quantifying the paper's claim that the conservative *question* (not the
tests' precision) is what produces false dependences.

The survey also collects the full ``repro.obs`` metrics registry (one
scope per program plus a corpus-wide aggregate) and writes the snapshot to
``results/metrics_corpus.json``.

Run:  python examples/corpus_survey.py            (skips CHOLSKY: slow)
      python examples/corpus_survey.py --all
"""

import json
import pathlib
import sys

from repro.baselines import compare_with_omega
from repro.obs import MetricsRegistry, collecting
from repro.programs import corpus_programs
from repro.reporting import comparison_table

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"


def main() -> None:
    include_cholsky = "--all" in sys.argv
    rows = {}
    per_program: dict[str, MetricsRegistry] = {}
    totals = MetricsRegistry()
    with collecting(totals):
        for program in corpus_programs():
            if program.name == "CHOLSKY" and not include_cholsky:
                continue
            with collecting(MetricsRegistry()) as registry:
                rows[program.name] = compare_with_omega(program)
            per_program[program.name] = registry
            counts = rows[program.name]
            eliminated = counts["omega_standard"] - counts["omega_live"]
            note = f"  ({eliminated} false dependences eliminated)" if eliminated else ""
            print(f"analysed {program.name:<24}{note}")
    print()
    print(comparison_table(rows))
    total_std = sum(r["omega_standard"] for r in rows.values())
    total_live = sum(r["omega_live"] for r in rows.values())
    print(
        f"totals: {total_std} apparent flow dependences, "
        f"{total_live} live after kills "
        f"({total_std - total_live} false dependences eliminated)"
    )

    RESULTS.mkdir(exist_ok=True)
    snapshot = {
        "programs": {
            name: registry.to_dict() for name, registry in per_program.items()
        },
        "totals": totals.to_dict(),
    }
    out = RESULTS / "metrics_corpus.json"
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"metrics written to {out}")


if __name__ == "__main__":
    main()
