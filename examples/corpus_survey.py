#!/usr/bin/env python
"""Survey the corpus: Omega-based analysis vs the classical baselines.

For every program in the corpus, report how many flow dependences the
classical combined test (ZIV/SIV/GCD/Banerjee) keeps, how many the Omega
test keeps without kills, and how many survive the extended analysis —
quantifying the paper's claim that the conservative *question* (not the
tests' precision) is what produces false dependences.

Run:  python examples/corpus_survey.py            (skips CHOLSKY: slow)
      python examples/corpus_survey.py --all
"""

import sys

from repro.baselines import compare_with_omega
from repro.programs import corpus_programs
from repro.reporting import comparison_table


def main() -> None:
    include_cholsky = "--all" in sys.argv
    rows = {}
    for program in corpus_programs():
        if program.name == "CHOLSKY" and not include_cholsky:
            continue
        rows[program.name] = compare_with_omega(program)
        counts = rows[program.name]
        eliminated = counts["omega_standard"] - counts["omega_live"]
        note = f"  ({eliminated} false dependences eliminated)" if eliminated else ""
        print(f"analysed {program.name:<24}{note}")
    print()
    print(comparison_table(rows))
    total_std = sum(r["omega_standard"] for r in rows.values())
    total_live = sum(r["omega_live"] for r in rows.values())
    print(
        f"totals: {total_std} apparent flow dependences, "
        f"{total_live} live after kills "
        f"({total_std - total_live} false dependences eliminated)"
    )


if __name__ == "__main__":
    main()
