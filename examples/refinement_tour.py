#!/usr/bin/env python
"""A tour of the paper's Examples 1-6: killing, covering and refinement.

For each example the script prints the code, the unrefined and refined
dependence vectors, and which dependences died — matching the table in
Section 4 of the paper.  Examples 4-6 (trapezoidal, partial and coupled
refinement) are exactly the cases the prior approaches (Brandes, Ribas)
could not handle.

Run:  python examples/refinement_tour.py
"""

from repro.analysis import AnalysisOptions, analyze
from repro.ir import to_text
from repro.programs import (
    example1,
    example2,
    example3,
    example4,
    example5,
    example6,
)

BLURBS = {
    "example1": "Killed flow dep: the a(L1) sweep overwrites a(n)",
    "example2": "Covering and killed deps",
    "example3": "Refinement: (0+,1) -> (0,1)",
    "example4": "Trapezoidal refinement (Brandes/Ribas cannot)",
    "example5": "Partial refinement: only (0:1,1) is valid",
    "example6": "Coupled refinement: (a,a) -> (1,1)",
}


def main() -> None:
    options = AnalysisOptions(partial_refine=True)
    for factory in (example1, example2, example3, example4, example5, example6):
        program = factory()
        print("=" * 64)
        print(f"{program.name}: {BLURBS[program.name]}")
        print("-" * 64)
        print(to_text(program))
        result = analyze(program, options)
        for dep in result.flow:
            marker = "LIVE" if dep in result.live_flow() else "DEAD"
            before = ", ".join(str(v) for v in dep.unrefined_directions)
            line = f"  [{marker}] {dep.src} -> {dep.dst}  {dep.direction_text()}"
            if dep.refined:
                line += f"   (refined from {before})"
            if dep.tags():
                line += f"   [{dep.tags()}]"
            print(line)
        print()


if __name__ == "__main__":
    main()
