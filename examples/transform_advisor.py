#!/usr/bin/env python
"""Transformation advisor: what accurate flow dependences actually buy.

For each kernel this script compares two worlds:

* memory-based analysis (`extended=False`) — the conservative question
  every 1992 production compiler asked;
* the paper's value-based analysis (kills/covers/refinement).

and then asks, loop by loop: can it run in parallel, and which arrays
need privatizing?  The scalar-expansion kernels show the headline effect:
with memory-based dependences the temporary looks live across iterations
and the loop stays serial; the kill analysis proves the flow dead and
parallelization (with privatization) becomes legal.

Run:  python examples/transform_advisor.py
"""

from repro.analysis import (
    AnalysisOptions,
    analyze,
    parallelizable_loops,
)
from repro.ir import parse, to_text

KERNELS = {
    "scalar expansion": """
        for i := 1 to n do {
          tmp(1) := b(i) + c(i)
          d(i) := tmp(1) + tmp(1)
        }
    """,
    "jacobi with copy": """
        for t := 1 to steps do {
          for i := 2 to n-1 do new(i) := a(i-1) + a(i+1)
          for i := 2 to n-1 do a(i) := new(i)
        }
    """,
    "true recurrence": """
        for i := 2 to n do a(i) := a(i-1) + b(i)
    """,
}


def advise(name: str, source: str) -> None:
    program = parse(source, name)
    print("=" * 64)
    print(name)
    print("-" * 64)
    print(to_text(program))

    for label, options in (
        ("memory-based (no kills)", AnalysisOptions(extended=False)),
        ("value-based (this paper)", AnalysisOptions()),
    ):
        result = analyze(program, options)
        print(f"{label}:")
        for report in parallelizable_loops(result):
            print(f"  {report.describe()}")
    print()


def main() -> None:
    for name, source in KERNELS.items():
        advise(name, source)


if __name__ == "__main__":
    main()
